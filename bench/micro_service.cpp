// micro_service — admission-service throughput microbenchmark.
//
// N producer threads blast a scenario's bid stream into the service while
// the slot loop runs at a configurable (fast) slot period; reports
// sustained ingest throughput (bids/s), decision-latency percentiles, and
// the end-of-run auction accounting. finish() runs the engine's
// ledger-vs-bookings cross-check, so a throughput number only prints if no
// validator/capacity violation occurred.
//
// The workload runs twice — once with profiling spans disabled, once
// enabled — and the decide-latency means (exact, not bucketed) give the
// span overhead on the decision path. DESIGN.md §8 budgets this at < 5%.
//
//   ./micro_service --producers 4 --nodes 20 --rate 40 --horizon 288
//       --slot-us 500 --json-out BENCH_micro_service.json
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "lorasched/core/pdftsp.h"
#include "lorasched/experiments/scenario.h"
#include "lorasched/obs/json.h"
#include "lorasched/obs/span.h"
#include "lorasched/service/admission_service.h"
#include "lorasched/util/cli.h"
#include "lorasched/util/timing.h"

using namespace lorasched;

namespace {

struct PassResult {
  service::MetricsSnapshot ops;
  Metrics metrics;
  double feed_seconds = 0.0;
};

PassResult run_pass(const Instance& instance, const ScenarioConfig& config,
                    std::size_t producers, std::chrono::microseconds slot_period,
                    std::size_t queue_cap, bool spans) {
  obs::Profiler::instance().set_enabled(spans);
  obs::Profiler::instance().reset();

  Pdftsp policy(pdftsp_config_for(instance), instance.cluster, instance.energy,
                instance.horizon);
  service::ServiceConfig service_config;
  service_config.queue_capacity = queue_cap;
  service_config.backpressure = service::BackpressureMode::kBlock;
  // Producers submit as fast as they can, far outrunning the slot clock, so
  // most bids arrive "late" relative to their scripted slot; clamping
  // auctions them at the slot the service is actually in.
  service_config.late_bids = service::LateBidMode::kClamp;
  service::AdmissionService server(instance, policy, service_config);

  std::thread consumer([&] { server.run(slot_period); });

  const util::Stopwatch wall;
  std::vector<std::thread> feeders;
  for (std::size_t p = 0; p < producers; ++p) {
    feeders.emplace_back([&, p] {
      for (std::size_t i = p; i < instance.tasks.size(); i += producers) {
        (void)server.submit(instance.tasks[i]);
      }
    });
  }
  for (auto& t : feeders) t.join();
  const double feed_seconds = wall.seconds();
  server.close();
  consumer.join();

  PassResult pass;
  pass.ops = server.metrics();
  pass.metrics = server.finish().metrics;  // throws on any violation
  pass.feed_seconds = feed_seconds;
  (void)config;
  return pass;
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  cli.allow_only({"producers", "nodes", "rate", "horizon", "slot-us",
                  "queue-cap", "seed", "json-out"});
  const auto producers =
      static_cast<std::size_t>(cli.get_int("producers", 4));

  ScenarioConfig config;
  config.nodes = static_cast<int>(cli.get_int("nodes", 20));
  config.arrival_rate = cli.get_double("rate", 40.0);
  config.horizon = static_cast<Slot>(cli.get_int("horizon", 288));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const Instance instance = make_instance(config);

  const auto slot_period =
      std::chrono::microseconds(cli.get_int("slot-us", 500));
  const auto queue_cap =
      static_cast<std::size_t>(cli.get_int("queue-cap", 1 << 16));

  // Warm-up pass (discarded): pages in the code and the allocator so the
  // measured passes compare span cost, not cold-start effects.
  (void)run_pass(instance, config, producers, slot_period, queue_cap, false);
  const PassResult base =
      run_pass(instance, config, producers, slot_period, queue_cap, false);
  const PassResult spans =
      run_pass(instance, config, producers, slot_period, queue_cap, true);
  const std::vector<obs::SpanStats> span_stats =
      obs::Profiler::instance().snapshot();
  obs::Profiler::instance().set_enabled(false);

  // decide_mean is exact (histogram sum/count), so the ratio isolates span
  // cost on the decision path from run-to-run jitter better than any
  // bucketed percentile could.
  const double overhead_pct =
      base.ops.decide_mean > 0.0
          ? (spans.ops.decide_mean - base.ops.decide_mean) /
                base.ops.decide_mean * 100.0
          : 0.0;

  const PassResult& ops_pass = base;
  const auto& ops = ops_pass.ops;
  std::cout << "micro_service: " << producers << " producers, "
            << instance.tasks.size() << " bids, horizon " << config.horizon
            << " x " << slot_period.count() << "us slots\n";
  std::cout << "  ingest      " << ops.ingest_rate << " bids/s sustained ("
            << static_cast<double>(ops.bids_ingested) / ops_pass.feed_seconds
            << " bids/s incl. ramp)\n";
  std::cout << "  decided     " << ops.bids_decided << " bids over "
            << ops.slots_processed << " slots, max queue depth "
            << ops.max_queue_depth << "\n";
  std::cout << "  decide lat  p50 " << ops.decide_p50 * 1e6 << "us  p99 "
            << ops.decide_p99 * 1e6 << "us  mean " << ops.decide_mean * 1e6
            << "us\n";
  std::cout << "  span cost   mean " << base.ops.decide_mean * 1e6
            << "us off vs " << spans.ops.decide_mean * 1e6 << "us on -> "
            << overhead_pct << "% overhead\n";
  std::cout << "  auction     welfare " << ops_pass.metrics.social_welfare
            << "$ admitted " << ops_pass.metrics.admitted << "/"
            << (ops_pass.metrics.admitted + ops_pass.metrics.rejected)
            << " utilization " << ops_pass.metrics.utilization << "\n";

  if (cli.has("json-out")) {
    obs::Json::Object doc;
    doc["bench"] = obs::Json("micro_service");
    obs::Json::Object cfg;
    cfg["producers"] = obs::Json(static_cast<double>(producers));
    cfg["nodes"] = obs::Json(static_cast<double>(config.nodes));
    cfg["bids"] = obs::Json(static_cast<double>(instance.tasks.size()));
    cfg["horizon"] = obs::Json(static_cast<double>(config.horizon));
    cfg["slot_us"] = obs::Json(static_cast<double>(slot_period.count()));
    doc["config"] = obs::Json(std::move(cfg));
    const auto pass_json = [](const PassResult& pass) {
      obs::Json::Object p;
      p["ingest_bids_per_sec"] = obs::Json(pass.ops.ingest_rate);
      p["decided"] = obs::Json(static_cast<double>(pass.ops.bids_decided));
      p["decide_p50_sec"] = obs::Json(pass.ops.decide_p50);
      p["decide_p99_sec"] = obs::Json(pass.ops.decide_p99);
      p["decide_mean_sec"] = obs::Json(pass.ops.decide_mean);
      p["welfare"] = obs::Json(pass.metrics.social_welfare);
      p["admitted"] = obs::Json(static_cast<double>(pass.metrics.admitted));
      return obs::Json(std::move(p));
    };
    doc["spans_off"] = pass_json(base);
    doc["spans_on"] = pass_json(spans);
    doc["span_overhead_pct"] = obs::Json(overhead_pct);
    obs::Json::Array spans_json;
    for (const obs::SpanStats& span : span_stats) {
      obs::Json::Object s;
      s["name"] = obs::Json(span.name);
      s["count"] = obs::Json(static_cast<double>(span.count));
      s["total_sec"] = obs::Json(span.total_seconds);
      s["self_sec"] = obs::Json(span.self_seconds);
      spans_json.push_back(obs::Json(std::move(s)));
    }
    doc["spans"] = obs::Json(std::move(spans_json));

    std::ofstream out(cli.get("json-out", ""));
    if (!out) throw std::runtime_error("cannot open json output file");
    out << obs::Json(std::move(doc)).dump() << "\n";
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
