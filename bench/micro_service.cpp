// micro_service — admission-service throughput microbenchmark.
//
// N producer threads blast a scenario's bid stream into the service while
// the slot loop runs at a configurable (fast) slot period; reports
// sustained ingest throughput (bids/s), decision-latency percentiles, and
// the end-of-run auction accounting. finish() runs the engine's
// ledger-vs-bookings cross-check, so a throughput number only prints if no
// validator/capacity violation occurred.
//
//   ./micro_service --producers 4 --nodes 20 --rate 40 --horizon 288 --slot-us 500
#include <chrono>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "lorasched/core/pdftsp.h"
#include "lorasched/experiments/scenario.h"
#include "lorasched/service/admission_service.h"
#include "lorasched/util/cli.h"
#include "lorasched/util/timing.h"

using namespace lorasched;

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  cli.allow_only(
      {"producers", "nodes", "rate", "horizon", "slot-us", "queue-cap",
       "seed"});
  const auto producers =
      static_cast<std::size_t>(cli.get_int("producers", 4));

  ScenarioConfig config;
  config.nodes = static_cast<int>(cli.get_int("nodes", 20));
  config.arrival_rate = cli.get_double("rate", 40.0);
  config.horizon = static_cast<Slot>(cli.get_int("horizon", 288));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const Instance instance = make_instance(config);

  Pdftsp policy(pdftsp_config_for(instance), instance.cluster, instance.energy,
                instance.horizon);
  service::ServiceConfig service_config;
  service_config.queue_capacity =
      static_cast<std::size_t>(cli.get_int("queue-cap", 1 << 16));
  service_config.backpressure = service::BackpressureMode::kBlock;
  // Producers submit as fast as they can, far outrunning the slot clock, so
  // most bids arrive "late" relative to their scripted slot; clamping
  // auctions them at the slot the service is actually in.
  service_config.late_bids = service::LateBidMode::kClamp;
  service::AdmissionService server(instance, policy, service_config);

  const auto slot_period = std::chrono::microseconds(cli.get_int("slot-us", 500));
  std::thread consumer([&] { server.run(slot_period); });

  const util::Stopwatch wall;
  std::vector<std::thread> feeders;
  for (std::size_t p = 0; p < producers; ++p) {
    feeders.emplace_back([&, p] {
      for (std::size_t i = p; i < instance.tasks.size(); i += producers) {
        (void)server.submit(instance.tasks[i]);
      }
    });
  }
  for (auto& t : feeders) t.join();
  const double feed_seconds = wall.seconds();
  server.close();
  consumer.join();

  const auto ops = server.metrics();
  const SimResult result = server.finish();  // throws on any violation

  std::cout << "micro_service: " << producers << " producers, "
            << instance.tasks.size() << " bids, horizon " << config.horizon
            << " x " << slot_period.count() << "us slots\n";
  std::cout << "  ingest      " << ops.ingest_rate << " bids/s sustained ("
            << static_cast<double>(ops.bids_ingested) / feed_seconds
            << " bids/s incl. ramp)\n";
  std::cout << "  decided     " << ops.bids_decided << " bids over "
            << ops.slots_processed << " slots, max queue depth "
            << ops.max_queue_depth << "\n";
  std::cout << "  decide lat  p50 " << ops.decide_p50 * 1e6 << "us  p99 "
            << ops.decide_p99 * 1e6 << "us  mean " << ops.decide_mean * 1e6
            << "us\n";
  std::cout << "  auction     welfare " << result.metrics.social_welfare
            << "$ admitted " << result.metrics.admitted << "/"
            << (result.metrics.admitted + result.metrics.rejected)
            << " utilization " << result.metrics.utilization << "\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
