// google-benchmark microbenchmarks for the algorithmic kernels: the
// per-task schedule DP (Alg. 2), the dual update (eq. 7/8), the full
// per-task pdFTSP decision, the simplex solver, a price-scale ablation
// of end-to-end welfare (the DESIGN.md §5 knob), and the raw cost of a
// LORASCHED_SPAN in its disabled and enabled states.
//
// With --json-out the binary instead runs the kernel A/B harness
// (DESIGN.md §5/§5c): the fig08 paper-scale cell replayed through the
// legacy (price_cache = false), scalar (cached, SIMD off), and simd
// (cached, runtime-dispatched kernel) find arms, and through the uncached /
// cached / cached+parallel / cached+batched decision arms (the last one
// drives Pdftsp::on_slot with epoch-batched admission), cross-checked
// bit-identical via an outcome fingerprint, measuring decisions/sec and
// steady-state allocations per ScheduleDp::find via the global operator
// new hook below. Emits BENCH_core.json (CI artifact):
//
//   ./micro_core --json-out BENCH_core.json
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <stdexcept>
#include <string>
#include <string_view>

#include "lorasched/core/pdftsp.h"
#include "lorasched/experiments/runner.h"
#include "lorasched/obs/json.h"
#include "lorasched/obs/span.h"
#include "lorasched/solver/simplex.h"
#include "lorasched/util/cli.h"

// --- Allocation-counting hook ------------------------------------------------
// Counts every global operator new in the process; the A/B harness diffs
// the counter around steady-state find() calls to pin "0 allocations per
// decision". Counting only (no interposed allocator): the hot path's claim
// is about call counts, not bytes.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace lorasched {
namespace {

Instance bench_instance(int nodes, double rate, Slot horizon = 96,
                        std::uint64_t seed = 9) {
  ScenarioConfig config;
  config.nodes = nodes;
  config.fleet = FleetKind::kHybrid;
  config.horizon = horizon;
  config.arrival_rate = rate;
  config.seed = seed;
  return make_instance(config);
}

/// Alg. 2's DP over (slot, work) for one task, window and fleet per Arg.
void BM_ScheduleDp(benchmark::State& state) {
  const Instance instance = bench_instance(static_cast<int>(state.range(0)),
                                           2.0);
  const ScheduleDp dp(instance.cluster, instance.energy);
  const DualState duals(instance.cluster.node_count(), instance.horizon);
  const Task& task = instance.tasks[instance.tasks.size() / 2];
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp.find(task, task.arrival, duals));
  }
  state.SetLabel(std::to_string(instance.cluster.node_count()) + " nodes");
}
BENCHMARK(BM_ScheduleDp)->Arg(8)->Arg(32)->Arg(128);

/// One multiplicative dual update (eq. 7/8) for a mid-sized schedule.
void BM_DualUpdate(benchmark::State& state) {
  const Instance instance = bench_instance(16, 2.0);
  const ScheduleDp dp(instance.cluster, instance.energy);
  DualState duals(instance.cluster.node_count(), instance.horizon);
  const Task& task = instance.tasks[instance.tasks.size() / 2];
  Schedule schedule = dp.find(task, task.arrival, duals);
  finalize_schedule(schedule, task, instance.cluster, instance.energy);
  for (auto _ : state) {
    duals.apply_update(task, schedule, instance.cluster, 1.0, 1.0, 1.0);
  }
}
BENCHMARK(BM_DualUpdate);

/// Full Alg. 1 loop body (vendor loop + DP + pricing) per task.
void BM_PdftspDecision(benchmark::State& state) {
  const Instance instance = bench_instance(static_cast<int>(state.range(0)),
                                           2.0);
  Pdftsp policy(pdftsp_config_for(instance), instance.cluster, instance.energy,
                instance.horizon);
  CapacityLedger ledger(instance.cluster, instance.horizon);
  std::size_t next = 0;
  for (auto _ : state) {
    const Task& task = instance.tasks[next++ % instance.tasks.size()];
    benchmark::DoNotOptimize(
        policy.handle_task(task, instance.market.quotes(task), ledger));
  }
  state.SetLabel(std::to_string(instance.cluster.node_count()) + " nodes");
}
BENCHMARK(BM_PdftspDecision)->Arg(16)->Arg(64);

/// Dense simplex on a random packing LP (rows = Arg).
void BM_Simplex(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int n = 2 * m;
  solver::LpProblem lp;
  std::uint64_t rng_state = 4242;
  auto next = [&rng_state]() {
    rng_state = rng_state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>((rng_state >> 33) & 0xffff) / 65535.0;
  };
  for (int j = 0; j < n; ++j) lp.objective.push_back(1.0 + next());
  for (int i = 0; i < m; ++i) {
    solver::LpProblem::Row row;
    for (int j = 0; j < n; ++j) {
      if (next() < 0.2) row.coeffs.emplace_back(j, 0.2 + next());
    }
    row.rhs = 2.0 + next();
    lp.rows.push_back(row);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::solve_lp(lp));
  }
}
BENCHMARK(BM_Simplex)->Arg(20)->Arg(60)->Arg(120);

/// Ablation: end-to-end welfare as the dual price scale varies (x1000 for
/// visibility in the counter column). Shows the calibration tradeoff
/// described in DESIGN.md §5 — full Lemma-2 strength prices out profitable
/// demand; near-zero reduces pdFTSP to a greedy profit filter.
void BM_PriceScaleAblation(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 10000.0;
  const Instance instance = bench_instance(8, 6.0, 72);
  for (auto _ : state) {
    Pdftsp policy(pdftsp_config_for(instance, std::max(scale, 1e-9)),
                  instance.cluster, instance.energy, instance.horizon);
    const SimResult result = run_simulation(instance, policy);
    state.counters["welfare"] = result.metrics.social_welfare;
  }
}
BENCHMARK(BM_PriceScaleAblation)
    ->Arg(0)       // scale 0 (profit filter only)
    ->Arg(10)      // 0.001
    ->Arg(100)     // 0.01 (default)
    ->Arg(1000)    // 0.1
    ->Arg(10000);  // 1.0 (full Lemma-2 constants)

/// Raw LORASCHED_SPAN cost: Arg(0) = disabled (one relaxed load + branch,
/// the production default), Arg(1) = enabled (two clock reads + relaxed
/// adds). The gap between the two is what every instrumented hot path pays
/// when profiling is turned on.
void BM_SpanCost(benchmark::State& state) {
  obs::Profiler::instance().set_enabled(state.range(0) != 0);
  for (auto _ : state) {
    LORASCHED_SPAN("bench/span_cost");
    benchmark::ClobberMemory();
  }
  obs::Profiler::instance().set_enabled(false);
  obs::Profiler::instance().reset();
  state.SetLabel(state.range(0) != 0 ? "enabled" : "disabled");
}
BENCHMARK(BM_SpanCost)->Arg(0)->Arg(1);

// --- Price-cache A/B harness (--json-out) -----------------------------------

/// FNV-1a over the replay's decisions: admit bit, payment bits, and every
/// (node, slot) of the admitted run. Any divergence between arms — placement,
/// pricing, or admission — changes the digest.
struct Fingerprint {
  std::uint64_t hash = 1469598103934665603ull;
  void mix(std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  }
  void mix_double(double value) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  }
  void mix_decision(const Decision& d) {
    mix(static_cast<std::uint64_t>(d.task));
    mix(d.admit ? 1 : 0);
    mix_double(d.payment);
    if (d.admit) {
      mix(static_cast<std::uint64_t>(d.schedule.vendor) + 7);
      for (const Assignment& a : d.schedule.run) {
        mix(static_cast<std::uint64_t>(a.node));
        mix(static_cast<std::uint64_t>(a.slot));
      }
    }
  }
};

struct FindArm {
  std::string label;
  std::string kernel;
  std::uint64_t calls = 0;
  double wall_seconds = 0.0;
  std::uint64_t steady_calls = 0;
  std::uint64_t steady_allocs = 0;
  std::uint64_t fingerprint = 0;

  [[nodiscard]] double finds_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(calls) / wall_seconds : 0.0;
  }
  [[nodiscard]] double allocs_per_find() const {
    return steady_calls > 0
               ? static_cast<double>(steady_allocs) /
                     static_cast<double>(steady_calls)
               : 0.0;
  }
};

/// Kernel-level A/B: replay the instance's bids through bare
/// ScheduleDp::find under moving duals (an eq. 7/8 update every
/// `admit_every`-th feasible plan, mimicking pdFTSP's admission cadence),
/// with one warmup lap to grow the arena before allocations are counted.
FindArm run_find_arm(const Instance& instance, bool price_cache, bool simd,
                     std::string label, std::size_t max_bids,
                     int admit_every) {
  FindArm arm;
  arm.label = std::move(label);
  ScheduleDpConfig config;
  config.price_cache = price_cache;
  config.simd = simd;
  const ScheduleDp dp(instance.cluster, instance.energy, config);
  arm.kernel = simd::kernel_name(dp.kernel());
  DpScratch scratch;
  Schedule plan;
  Fingerprint digest;

  const std::size_t bids = std::min(max_bids, instance.tasks.size());
  DualState duals(instance.cluster.node_count(), instance.horizon);
  for (int lap = 0; lap < 2; ++lap) {
    const bool measured = lap == 1;
    duals = DualState(instance.cluster.node_count(), instance.horizon);
    int feasible = 0;
    const auto started = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < bids; ++i) {
      const Task& task = instance.tasks[i];
      dp.find_into(plan, task, task.arrival, duals, scratch);
      if (!plan.empty() && ++feasible % admit_every == 0) {
        finalize_schedule(plan, task, instance.cluster, instance.energy);
        duals.apply_update(task, plan, instance.cluster, 1.0, 1.0, 1.0);
      }
      if (measured) digest.mix(plan.empty() ? 0 : 1);
    }
    const auto stopped = std::chrono::steady_clock::now();
    if (measured) {
      arm.calls = bids;
      arm.wall_seconds = std::chrono::duration<double>(stopped - started).count();
      arm.fingerprint = digest.hash;
    }
  }
  // Steady-state allocation window: prices frozen (runs of rejected bids
  // between admissions — the common case eq. 7/8 creates), arena warm.
  // This is the "0 allocations per find" claim the cached path makes.
  const std::size_t steady = std::min<std::size_t>(512, bids);
  for (std::size_t i = 0; i < steady; ++i) {  // warm the arena once more
    const Task& task = instance.tasks[i];
    dp.find_into(plan, task, task.arrival, duals, scratch);
  }
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < steady; ++i) {
    const Task& task = instance.tasks[i];
    dp.find_into(plan, task, task.arrival, duals, scratch);
  }
  arm.steady_calls = steady;
  arm.steady_allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  return arm;
}

struct DecisionArm {
  std::string label;
  std::uint64_t decisions = 0;
  double wall_seconds = 0.0;
  std::uint64_t admitted = 0;
  double welfare = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t fingerprint = 0;

  [[nodiscard]] double decisions_per_sec() const {
    return wall_seconds > 0.0
               ? static_cast<double>(decisions) / wall_seconds
               : 0.0;
  }
  [[nodiscard]] double hit_rate() const {
    const double total = static_cast<double>(cache_hits + cache_misses);
    return total > 0.0 ? static_cast<double>(cache_hits) / total : 0.0;
  }
};

/// Decision-level A/B: full Alg. 1 replay (vendor loop + DP + pricing +
/// booking) of every bid, driven through Pdftsp::on_slot slot-by-slot
/// exactly as the simulation engine does — so the `admission_batch` knob
/// (epoch-batched admission) is exercised by the same harness and pinned
/// bit-identical against the one-at-a-time arms.
DecisionArm run_decision_arm(const Instance& instance, bool price_cache,
                             int parallel_candidates, int admission_batch,
                             std::string label) {
  DecisionArm arm;
  arm.label = std::move(label);
  PdftspConfig config = pdftsp_config_for(instance);
  config.dp.price_cache = price_cache;
  config.parallel_candidates = parallel_candidates;
  config.admission_batch = admission_batch;
  Pdftsp policy(config, instance.cluster, instance.energy, instance.horizon);
  CapacityLedger ledger(instance.cluster, instance.horizon);
  for (const Outage& outage : instance.outages) {
    for (Slot t = std::max<Slot>(0, outage.from);
         t < std::min<Slot>(instance.horizon, outage.to); ++t) {
      ledger.block(outage.node, t);
    }
  }
  Fingerprint digest;
  std::vector<Task> arrivals;
  const auto started = std::chrono::steady_clock::now();
  std::size_t next = 0;
  for (Slot now = 0; now < instance.horizon && next < instance.tasks.size();
       ++now) {
    arrivals.clear();
    while (next < instance.tasks.size() &&
           instance.tasks[next].arrival == now) {
      arrivals.push_back(instance.tasks[next++]);
    }
    if (arrivals.empty()) continue;
    const SlotContext ctx{now,
                          arrivals,
                          instance.cluster,
                          instance.energy,
                          instance.market,
                          ledger};
    for (const Decision& d : policy.on_slot(ctx)) {
      if (d.admit) {
        ++arm.admitted;
        arm.welfare += d.schedule.welfare_gain;
      }
      digest.mix_decision(d);
    }
  }
  const auto stopped = std::chrono::steady_clock::now();
  arm.decisions = instance.tasks.size();
  arm.wall_seconds = std::chrono::duration<double>(stopped - started).count();
  arm.cache_hits = policy.dp_cache_stats().hits;
  arm.cache_misses = policy.dp_cache_stats().misses;
  arm.fingerprint = digest.hash;
  return arm;
}

int run_cache_ab(const util::Cli& cli) {
  // Fig. 8 "high" cell at paper scale, same as bench/micro_shard: 100
  // hybrid nodes, one day of 10-minute slots, Poisson arrivals at mean 80
  // bids per slot.
  ScenarioConfig config;
  config.nodes = static_cast<int>(cli.get_int("nodes", 100));
  config.fleet = FleetKind::kHybrid;
  config.horizon = static_cast<Slot>(cli.get_int("horizon", 144));
  config.arrival_rate = cli.get_double("rate", 80.0);
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const auto find_bids =
      static_cast<std::size_t>(cli.get_int("find-bids", 4000));
  const Instance instance = make_instance(config);

  std::cout << "micro_core cache A/B: " << instance.tasks.size() << " bids, "
            << config.nodes << " nodes (hybrid), horizon " << config.horizon
            << "\n";

  // Kernel level: bare ScheduleDp::find, admission-paced dual movement.
  // Three arms — legacy (per-call path), scalar (cached, SIMD off), simd
  // (cached, runtime-dispatched kernel); on hardware without a vector arm
  // the simd arm degrades to scalar and reports kernel "scalar".
  std::vector<FindArm> finds;
  finds.push_back(
      run_find_arm(instance, false, false, "find-legacy", find_bids, 16));
  finds.push_back(
      run_find_arm(instance, true, false, "find-scalar", find_bids, 16));
  finds.push_back(
      run_find_arm(instance, true, true, "find-simd", find_bids, 16));
  const FindArm& find_base = finds.front();
  std::cout << "  arm            kernel   finds/s   speedup  allocs/find "
               "(steady)\n";
  for (const FindArm& arm : finds) {
    std::printf("  %-14s %-7s %8.0f %8.2fx %12.3f\n", arm.label.c_str(),
                arm.kernel.c_str(), arm.finds_per_sec(),
                find_base.finds_per_sec() > 0.0
                    ? arm.finds_per_sec() / find_base.finds_per_sec()
                    : 0.0,
                arm.allocs_per_find());
    if (arm.fingerprint != find_base.fingerprint) {
      std::cerr << "error: find-level feasibility fingerprint diverged for "
                << arm.label << "\n";
      return 1;
    }
  }

  // Decision level: full Alg. 1 replay through on_slot. The batched arm
  // exercises epoch-batched admission (PdftspConfig::admission_batch) and
  // must stay fingerprint-identical to the one-at-a-time arms.
  std::vector<DecisionArm> decisions;
  decisions.push_back(run_decision_arm(instance, false, 0, 0, "uncached"));
  decisions.push_back(run_decision_arm(instance, true, 0, 0, "cached"));
  decisions.push_back(
      run_decision_arm(instance, true, 4, 0, "cached+parallel"));
  decisions.push_back(
      run_decision_arm(instance, true, 0, 32, "cached+batch32"));
  const DecisionArm& base = decisions.front();
  std::cout << "  arm              decisions/s  speedup  admitted    welfare  "
               "hit-rate\n";
  for (const DecisionArm& arm : decisions) {
    std::printf("  %-16s %11.0f %8.2fx %9llu %10.1f %9.3f\n",
                arm.label.c_str(), arm.decisions_per_sec(),
                base.decisions_per_sec() > 0.0
                    ? arm.decisions_per_sec() / base.decisions_per_sec()
                    : 0.0,
                static_cast<unsigned long long>(arm.admitted), arm.welfare,
                arm.hit_rate());
    if (arm.fingerprint != base.fingerprint) {
      std::cerr << "error: decisions diverged between arms (" << arm.label
                << " vs " << base.label << ") — the cache is not bit-exact\n";
      return 1;
    }
  }

  if (cli.has("json-out")) {
    obs::Json::Object doc;
    doc["bench"] = obs::Json("micro_core");
    obs::Json::Object cfg;
    cfg["nodes"] = obs::Json(static_cast<double>(config.nodes));
    cfg["horizon"] = obs::Json(static_cast<double>(config.horizon));
    cfg["rate"] = obs::Json(config.arrival_rate);
    cfg["seed"] = obs::Json(static_cast<double>(config.seed));
    cfg["bids"] = obs::Json(static_cast<double>(instance.tasks.size()));
    cfg["find_bids"] = obs::Json(static_cast<double>(find_bids));
    doc["config"] = obs::Json(std::move(cfg));

    obs::Json::Array find_rows;
    for (const FindArm& arm : finds) {
      obs::Json::Object row;
      row["label"] = obs::Json(arm.label);
      row["kernel"] = obs::Json(arm.kernel);
      row["calls"] = obs::Json(static_cast<double>(arm.calls));
      row["wall_seconds"] = obs::Json(arm.wall_seconds);
      row["finds_per_sec"] = obs::Json(arm.finds_per_sec());
      row["speedup_vs_legacy"] =
          obs::Json(find_base.finds_per_sec() > 0.0
                        ? arm.finds_per_sec() / find_base.finds_per_sec()
                        : 0.0);
      row["allocs_per_find_steady"] = obs::Json(arm.allocs_per_find());
      find_rows.push_back(obs::Json(std::move(row)));
    }
    doc["find"] = obs::Json(std::move(find_rows));

    obs::Json::Array decision_rows;
    for (const DecisionArm& arm : decisions) {
      obs::Json::Object row;
      row["label"] = obs::Json(arm.label);
      row["decisions"] = obs::Json(static_cast<double>(arm.decisions));
      row["wall_seconds"] = obs::Json(arm.wall_seconds);
      row["decisions_per_sec"] = obs::Json(arm.decisions_per_sec());
      row["speedup_vs_uncached"] =
          obs::Json(base.decisions_per_sec() > 0.0
                        ? arm.decisions_per_sec() / base.decisions_per_sec()
                        : 0.0);
      row["admitted"] = obs::Json(static_cast<double>(arm.admitted));
      row["welfare"] = obs::Json(arm.welfare);
      row["cache_hits"] = obs::Json(static_cast<double>(arm.cache_hits));
      row["cache_misses"] = obs::Json(static_cast<double>(arm.cache_misses));
      row["cache_hit_rate"] = obs::Json(arm.hit_rate());
      row["decisions_identical_to_uncached"] =
          obs::Json(arm.fingerprint == base.fingerprint);
      decision_rows.push_back(obs::Json(std::move(row)));
    }
    doc["decision"] = obs::Json(std::move(decision_rows));

    std::ofstream out(cli.get("json-out", ""));
    if (!out) throw std::runtime_error("cannot open json output file");
    out << obs::Json(std::move(doc)).dump() << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace lorasched

int main(int argc, char** argv) try {
  // --json-out selects the cache A/B harness; anything else runs the
  // google-benchmark suite unchanged.
  bool ab_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--json-out", 0) == 0) ab_mode = true;
  }
  if (ab_mode) {
    const lorasched::util::Cli cli(argc, argv);
    cli.allow_only(
        {"nodes", "rate", "horizon", "seed", "find-bids", "json-out"});
    return lorasched::run_cache_ab(cli);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
