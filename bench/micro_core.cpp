// google-benchmark microbenchmarks for the algorithmic kernels: the
// per-task schedule DP (Alg. 2), the dual update (eq. 7/8), the full
// per-task pdFTSP decision, the simplex solver, a price-scale ablation
// of end-to-end welfare (the DESIGN.md §5 knob), and the raw cost of a
// LORASCHED_SPAN in its disabled and enabled states.
#include <benchmark/benchmark.h>

#include "lorasched/core/pdftsp.h"
#include "lorasched/experiments/runner.h"
#include "lorasched/obs/span.h"
#include "lorasched/solver/simplex.h"

namespace lorasched {
namespace {

Instance bench_instance(int nodes, double rate, Slot horizon = 96,
                        std::uint64_t seed = 9) {
  ScenarioConfig config;
  config.nodes = nodes;
  config.fleet = FleetKind::kHybrid;
  config.horizon = horizon;
  config.arrival_rate = rate;
  config.seed = seed;
  return make_instance(config);
}

/// Alg. 2's DP over (slot, work) for one task, window and fleet per Arg.
void BM_ScheduleDp(benchmark::State& state) {
  const Instance instance = bench_instance(static_cast<int>(state.range(0)),
                                           2.0);
  const ScheduleDp dp(instance.cluster, instance.energy);
  const DualState duals(instance.cluster.node_count(), instance.horizon);
  const Task& task = instance.tasks[instance.tasks.size() / 2];
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp.find(task, task.arrival, duals));
  }
  state.SetLabel(std::to_string(instance.cluster.node_count()) + " nodes");
}
BENCHMARK(BM_ScheduleDp)->Arg(8)->Arg(32)->Arg(128);

/// One multiplicative dual update (eq. 7/8) for a mid-sized schedule.
void BM_DualUpdate(benchmark::State& state) {
  const Instance instance = bench_instance(16, 2.0);
  const ScheduleDp dp(instance.cluster, instance.energy);
  DualState duals(instance.cluster.node_count(), instance.horizon);
  const Task& task = instance.tasks[instance.tasks.size() / 2];
  Schedule schedule = dp.find(task, task.arrival, duals);
  finalize_schedule(schedule, task, instance.cluster, instance.energy);
  for (auto _ : state) {
    duals.apply_update(task, schedule, instance.cluster, 1.0, 1.0, 1.0);
  }
}
BENCHMARK(BM_DualUpdate);

/// Full Alg. 1 loop body (vendor loop + DP + pricing) per task.
void BM_PdftspDecision(benchmark::State& state) {
  const Instance instance = bench_instance(static_cast<int>(state.range(0)),
                                           2.0);
  Pdftsp policy(pdftsp_config_for(instance), instance.cluster, instance.energy,
                instance.horizon);
  CapacityLedger ledger(instance.cluster, instance.horizon);
  std::size_t next = 0;
  for (auto _ : state) {
    const Task& task = instance.tasks[next++ % instance.tasks.size()];
    benchmark::DoNotOptimize(
        policy.handle_task(task, instance.market.quotes(task), ledger));
  }
  state.SetLabel(std::to_string(instance.cluster.node_count()) + " nodes");
}
BENCHMARK(BM_PdftspDecision)->Arg(16)->Arg(64);

/// Dense simplex on a random packing LP (rows = Arg).
void BM_Simplex(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int n = 2 * m;
  solver::LpProblem lp;
  std::uint64_t rng_state = 4242;
  auto next = [&rng_state]() {
    rng_state = rng_state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>((rng_state >> 33) & 0xffff) / 65535.0;
  };
  for (int j = 0; j < n; ++j) lp.objective.push_back(1.0 + next());
  for (int i = 0; i < m; ++i) {
    solver::LpProblem::Row row;
    for (int j = 0; j < n; ++j) {
      if (next() < 0.2) row.coeffs.emplace_back(j, 0.2 + next());
    }
    row.rhs = 2.0 + next();
    lp.rows.push_back(row);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::solve_lp(lp));
  }
}
BENCHMARK(BM_Simplex)->Arg(20)->Arg(60)->Arg(120);

/// Ablation: end-to-end welfare as the dual price scale varies (x1000 for
/// visibility in the counter column). Shows the calibration tradeoff
/// described in DESIGN.md §5 — full Lemma-2 strength prices out profitable
/// demand; near-zero reduces pdFTSP to a greedy profit filter.
void BM_PriceScaleAblation(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 10000.0;
  const Instance instance = bench_instance(8, 6.0, 72);
  for (auto _ : state) {
    Pdftsp policy(pdftsp_config_for(instance, std::max(scale, 1e-9)),
                  instance.cluster, instance.energy, instance.horizon);
    const SimResult result = run_simulation(instance, policy);
    state.counters["welfare"] = result.metrics.social_welfare;
  }
}
BENCHMARK(BM_PriceScaleAblation)
    ->Arg(0)       // scale 0 (profit filter only)
    ->Arg(10)      // 0.001
    ->Arg(100)     // 0.01 (default)
    ->Arg(1000)    // 0.1
    ->Arg(10000);  // 1.0 (full Lemma-2 constants)

/// Raw LORASCHED_SPAN cost: Arg(0) = disabled (one relaxed load + branch,
/// the production default), Arg(1) = enabled (two clock reads + relaxed
/// adds). The gap between the two is what every instrumented hot path pays
/// when profiling is turned on.
void BM_SpanCost(benchmark::State& state) {
  obs::Profiler::instance().set_enabled(state.range(0) != 0);
  for (auto _ : state) {
    LORASCHED_SPAN("bench/span_cost");
    benchmark::ClobberMemory();
  }
  obs::Profiler::instance().set_enabled(false);
  obs::Profiler::instance().reset();
  state.SetLabel(state.range(0) != 0 ? "enabled" : "disabled");
}
BENCHMARK(BM_SpanCost)->Arg(0)->Arg(1);

}  // namespace
}  // namespace lorasched

BENCHMARK_MAIN();
