// Figure 7 — Impact of Real-World Task Traces: arrival shapes modelled on
// the MLaaS / Philly / Helios public traces (see workload/traces.h for the
// substitution notes). pdFTSP leads on every trace.
#include "bench_common.h"

using namespace lorasched;
using namespace lorasched::bench;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  cli.allow_only(bar_flags());
  const bool paper = cli.get_bool("paper-scale", false);

  std::vector<Cell> cells;
  for (TraceKind trace :
       {TraceKind::kMLaaS, TraceKind::kPhilly, TraceKind::kHelios}) {
    ScenarioConfig config;
    config.nodes = paper ? 100 : 16;
    config.fleet = FleetKind::kHybrid;
    config.horizon = 144;
    config.arrival_rate = paper ? 50.0 : 7.0;
    config.trace = trace;
    cells.push_back({to_string(trace), config});
  }
  run_bar_figure("Fig. 7 — Impact of Real-World Task Traces (normalized welfare)",
                 "trace", cells, default_seeds(cli),
                 cli.get_bool("csv", false));
  return 0;
}
