// Failure-resilience ablation (beyond the paper's figures): social welfare
// for all four algorithms as random node-outage windows are injected.
// pdFTSP's line-8 capacity check plus price steering routes work around
// failed node-slots, so its welfare should degrade no faster than the
// capacity actually lost.
//
//   ./ablation_outages [--seeds N] [--csv]
#include <iostream>

#include "bench_common.h"

using namespace lorasched;
using namespace lorasched::bench;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  cli.allow_only({"seeds", "csv"});

  std::vector<Cell> cells;
  for (int outages : {0, 4, 8, 16}) {
    ScenarioConfig config;
    config.nodes = 12;
    config.fleet = FleetKind::kHybrid;
    config.horizon = 96;
    config.arrival_rate = 6.0;
    config.outages = outages;
    config.outage_duration = 16;
    cells.push_back({std::to_string(outages) + " outages", config});
  }
  run_bar_figure(
      "Outage resilience — welfare vs. injected node failures (16-slot "
      "windows on a 12-node fleet)",
      "failures", cells, default_seeds(cli), cli.get_bool("csv", false));
  return 0;
}
