// Pricing-mechanism ablation (beyond the paper's figures): the paper's
// posted-resource-price auction vs. pay-as-bid and posted fixed prices, at
// three demand levels.
//
// Two findings this table makes visible:
//  * no single posted price fits every load (the welfare-maximizing markup
//    moves from <=1x at light load to >=4x at heavy load), while the
//    auction needs no retuning — the introduction's adaptability argument;
//  * pay-as-bid matches the auction's welfare but is manipulable: the last
//    column shows the largest utility gain a bidder can realize by shading
//    its bid (zero for the truthful mechanisms).
//
//   ./ablation_pricing [--seed S] [--csv]
#include <iostream>
#include <memory>

#include "lorasched/baselines/pricing_schemes.h"
#include "lorasched/core/online_params.h"
#include "lorasched/experiments/scenario.h"
#include "lorasched/sim/engine.h"
#include "lorasched/util/cli.h"
#include "lorasched/util/table.h"

using namespace lorasched;

namespace {

/// Max utility gain any probed bidder achieves by misreporting under the
/// given policy factory (0 for a truthful mechanism).
template <typename MakePolicy>
double max_shading_gain(const Instance& instance, MakePolicy make_policy) {
  auto utility_of = [&](TaskId victim, double factor) {
    Instance modified = instance;
    modified.tasks[static_cast<std::size_t>(victim)].bid *= factor;
    auto policy = make_policy(modified);
    const SimResult result = run_simulation(modified, *policy);
    const TaskOutcome& o = result.outcomes[static_cast<std::size_t>(victim)];
    return o.admitted
               ? instance.tasks[static_cast<std::size_t>(victim)].true_value -
                     o.payment
               : 0.0;
  };
  double best_gain = 0.0;
  for (TaskId victim = 0;
       victim < static_cast<TaskId>(instance.tasks.size()); victim += 11) {
    const double honest = utility_of(victim, 1.0);
    for (double factor : {0.6, 0.8, 1.3}) {
      best_gain = std::max(best_gain, utility_of(victim, factor) - honest);
    }
  }
  return best_gain;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  cli.allow_only({"seed", "csv"});
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 45));

  util::Table table("Pricing-mechanism ablation",
                    {"load", "mechanism", "welfare($)", "provider($)",
                     "admitted", "max shading gain($)"});

  for (const auto& [label, rate] :
       std::vector<std::pair<std::string, double>>{
           {"light", 3.0}, {"medium", 6.0}, {"heavy", 12.0}}) {
    ScenarioConfig config;
    config.nodes = 6;
    config.horizon = 48;
    config.arrival_rate = rate;
    config.seed = seed;
    const Instance instance = make_instance(config);
    const PdftspConfig pd_config = pdftsp_config_for(instance);

    auto add_row = [&](const std::string& name, const Metrics& m,
                       double shading_gain) {
      table.add_row({label, name, util::Table::num(m.social_welfare, 2),
                     util::Table::num(m.provider_utility, 2),
                     std::to_string(m.admitted),
                     util::Table::num(shading_gain, 4)});
    };

    {
      Pdftsp policy(pd_config, instance.cluster, instance.energy,
                    instance.horizon);
      const Metrics m = run_simulation(instance, policy).metrics;
      const double gain = max_shading_gain(instance, [&](const Instance& i) {
        return std::make_unique<Pdftsp>(pd_config, i.cluster, i.energy,
                                        i.horizon);
      });
      add_row("pdFTSP", m, gain);
    }
    {
      AdaptivePdftsp policy({}, instance.cluster, instance.energy,
                            instance.horizon);
      add_row("pdFTSP-adaptive", run_simulation(instance, policy).metrics,
              0.0);
    }
    {
      FirstPricePolicy policy(pd_config, instance.cluster, instance.energy,
                              instance.horizon);
      const Metrics m = run_simulation(instance, policy).metrics;
      const double gain = max_shading_gain(instance, [&](const Instance& i) {
        return std::make_unique<FirstPricePolicy>(pd_config, i.cluster,
                                                  i.energy, i.horizon);
      });
      add_row("first-price", m, gain);
    }
    for (double markup : {1.0, 2.5, 4.0}) {
      const Money rate_per_ksample = reference_price_per_ksample(
          instance.cluster, instance.energy, markup);
      FixedPricePolicy policy(rate_per_ksample);
      add_row("fixed x" + util::Table::num(markup, 1),
              run_simulation(instance, policy).metrics, 0.0);
    }
  }

  if (cli.get_bool("csv", false)) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout << "\nShading gain > 0 means a bidder profits from lying — "
                 "only the first-price variant is manipulable.\n";
  }
  return 0;
}
