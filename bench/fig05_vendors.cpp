// Figure 5 — Impact of the Number of Labor Vendors: welfare rises slightly
// with more vendors because the scheduler has more price/delay tradeoffs to
// choose from for data pre-processing (paper: 3/5/10 vendors).
#include "bench_common.h"

using namespace lorasched;
using namespace lorasched::bench;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  cli.allow_only(bar_flags());
  const bool paper = cli.get_bool("paper-scale", false);

  std::vector<Cell> cells;
  for (int vendors : {3, 5, 10}) {
    ScenarioConfig config;
    config.nodes = paper ? 100 : 16;
    config.fleet = FleetKind::kHybrid;
    config.horizon = 144;
    config.arrival_rate = paper ? 50.0 : 7.0;
    config.vendors = vendors;
    // Pre-processing-heavy workload so vendor choice matters.
    config.prep_probability = 0.7;
    cells.push_back({std::to_string(vendors), config});
  }
  run_bar_figure(
      "Fig. 5 — Impact of Number of Labor Vendors (normalized welfare)",
      "vendors", cells, default_seeds(cli), cli.get_bool("csv", false));
  return 0;
}
