// Figure 11 — Individual Rationality: sample 10 admitted tasks and show
// their (normalized) bids against their payments. The payment never exceeds
// the bid, so no winner is ever worse off for participating (Thm. 4).
//
//   ./fig11_rationality [--seed S] [--csv]
#include <algorithm>
#include <iostream>

#include "lorasched/core/pdftsp.h"
#include "lorasched/experiments/scenario.h"
#include "lorasched/sim/engine.h"
#include "lorasched/util/cli.h"
#include "lorasched/util/table.h"

using namespace lorasched;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  cli.allow_only({"seed", "csv"});

  ScenarioConfig config;
  config.nodes = 8;
  config.horizon = 96;
  config.arrival_rate = 3.0;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const Instance instance = make_instance(config);

  Pdftsp policy(pdftsp_config_for(instance), instance.cluster, instance.energy,
                instance.horizon);
  const SimResult result = run_simulation(instance, policy);

  // 10 admitted tasks spread across the run, bids normalized to the largest
  // sampled bid (the paper plots "normalized amount of money").
  std::vector<const TaskOutcome*> winners;
  for (const TaskOutcome& o : result.outcomes) {
    if (o.admitted) winners.push_back(&o);
  }
  std::vector<const TaskOutcome*> sample;
  for (std::size_t i = 0; i < 10 && !winners.empty(); ++i) {
    sample.push_back(winners[i * winners.size() / 10]);
  }
  double max_bid = 1e-12;
  for (const TaskOutcome* o : sample) max_bid = std::max(max_bid, o->bid);

  util::Table table("Fig. 11 — bid vs. payment for 10 sampled winners",
                    {"task", "bid(norm)", "payment(norm)", "bid($)",
                     "payment($)"});
  bool all_rational = true;
  for (const TaskOutcome* o : sample) {
    all_rational = all_rational && o->payment <= o->bid + 1e-9;
    table.add_row({std::to_string(o->task),
                   util::Table::num(o->bid / max_bid, 3),
                   util::Table::num(o->payment / max_bid, 3),
                   util::Table::num(o->bid, 3),
                   util::Table::num(o->payment, 3)});
  }
  if (cli.get_bool("csv", false)) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout << "\nPayment <= bid for every sampled winner: "
              << (all_rational ? "yes" : "NO (violation!)")
              << " — individual rationality (Thm. 4).\n";
  }
  return 0;
}
