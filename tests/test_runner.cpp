// Integration tests for scenario assembly and the multi-policy runner —
// including the paper's headline qualitative claim: pdFTSP leads the three
// baselines on social welfare.
#include "lorasched/experiments/runner.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace lorasched {
namespace {

TEST(Scenario, InstanceMatchesConfig) {
  ScenarioConfig config = testing::small_scenario(3);
  config.nodes = 4;
  config.fleet = FleetKind::kA40Only;
  config.vendors = 7;
  const Instance instance = make_instance(config);
  EXPECT_EQ(instance.cluster.node_count(), 4);
  EXPECT_EQ(instance.cluster.profile(0).name, "A40-48GB");
  EXPECT_EQ(instance.market.vendor_count(), 7);
  EXPECT_EQ(instance.horizon, config.horizon);
  EXPECT_FALSE(instance.tasks.empty());
}

TEST(Scenario, DeterministicInSeed) {
  const Instance a = make_instance(testing::small_scenario(9));
  const Instance b = make_instance(testing::small_scenario(9));
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.tasks[i].bid, b.tasks[i].bid);
    EXPECT_EQ(a.tasks[i].deadline, b.tasks[i].deadline);
  }
}

TEST(Scenario, SeedChangesWorkload) {
  const Instance a = make_instance(testing::small_scenario(1));
  const Instance b = make_instance(testing::small_scenario(2));
  EXPECT_NE(a.tasks.size(), b.tasks.size());
}

TEST(Scenario, TraceShapesArrivals) {
  ScenarioConfig config = testing::small_scenario(4);
  config.trace = TraceKind::kPhilly;
  config.horizon = 144;
  config.arrival_rate = 2.0;
  const Instance instance = make_instance(config);
  // Philly: almost nothing overnight (first ~30 slots).
  int overnight = 0;
  for (const Task& t : instance.tasks) overnight += t.arrival < 30;
  EXPECT_LT(static_cast<double>(overnight),
            0.15 * static_cast<double>(instance.tasks.size()));
}

TEST(Scenario, PdftspConfigUsesLemmaTwoBounds) {
  const Instance instance = make_instance(testing::small_scenario(5));
  const PdftspConfig config = pdftsp_config_for(instance);
  EXPECT_NEAR(config.alpha,
              kDefaultPriceScale * alpha_bound(instance.tasks, instance.cluster),
              1e-12);
  EXPECT_NEAR(config.beta,
              kDefaultPriceScale * beta_bound(instance.tasks, instance.cluster),
              1e-12);
  // Full-strength Lemma 2 constants on request.
  const PdftspConfig full = pdftsp_config_for(instance, 1.0);
  EXPECT_NEAR(full.alpha, alpha_bound(instance.tasks, instance.cluster),
              1e-12);
  EXPECT_NEAR(config.welfare_unit,
              welfare_unit_estimate(instance.tasks, instance.cluster), 1e-12);
}

TEST(Runner, ComparesAllFourPolicies) {
  const Instance instance = make_instance(testing::small_scenario(6));
  const auto results = compare_policies(instance);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].policy, "pdFTSP");
  EXPECT_EQ(results[1].policy, "Titan");
  EXPECT_EQ(results[2].policy, "EFT");
  EXPECT_EQ(results[3].policy, "NTM");
}

TEST(Runner, NormalizationPutsBestAtOne) {
  const Instance instance = make_instance(testing::small_scenario(6));
  const auto results = compare_policies(instance);
  double best = 0.0;
  for (const auto& r : results) best = std::max(best, r.normalized_welfare);
  EXPECT_NEAR(best, 1.0, 1e-12);
  for (const auto& r : results) {
    EXPECT_GE(r.normalized_welfare, 0.0);
    EXPECT_LE(r.normalized_welfare, 1.0 + 1e-12);
  }
}

TEST(Runner, RunSetSubsetsRespected) {
  const Instance instance = make_instance(testing::small_scenario(6));
  RunSet set;
  set.titan = false;
  set.ntm = false;
  const auto results = compare_policies(instance, set);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].policy, "pdFTSP");
  EXPECT_EQ(results[1].policy, "EFT");
}

TEST(Runner, PdftspLeadsBaselinesOnLoadedScenario) {
  // The paper's core claim (Figs. 4-9): under meaningful load pdFTSP's
  // welfare is at least that of every baseline. Averaged over seeds to
  // avoid single-draw flukes.
  ScenarioConfig config = testing::small_scenario(0);
  config.nodes = 4;
  config.arrival_rate = 6.0;  // loaded: admission control must matter
  config.horizon = 48;
  const auto results =
      compare_policies_averaged(config, {11ull, 22ull, 33ull});
  ASSERT_EQ(results.size(), 4u);
  const PolicyResult* pdftsp = &results[0];
  ASSERT_EQ(pdftsp->policy, "pdFTSP");
  for (const auto& r : results) {
    EXPECT_GE(pdftsp->metrics.social_welfare + 1e-9,
              r.metrics.social_welfare)
        << "beaten by " << r.policy;
  }
  EXPECT_NEAR(pdftsp->normalized_welfare, 1.0, 1e-9);
}

TEST(Runner, AveragedRunCollectsTimings) {
  ScenarioConfig config = testing::small_scenario(7);
  const auto results = compare_policies_averaged(config, {1ull, 2ull});
  for (const auto& r : results) {
    EXPECT_FALSE(r.decide_seconds.empty());
  }
}

TEST(Runner, AveragedRejectsEmptySeedList) {
  EXPECT_THROW(compare_policies_averaged(testing::small_scenario(1), {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace lorasched
