// Failure-injection tests: node outages must never host work, every policy
// must degrade gracefully (no crashes, no constraint violations), and
// saturating outages must suppress welfare.
#include <gtest/gtest.h>

#include "lorasched/baselines/eft.h"
#include "lorasched/baselines/ntm.h"
#include "lorasched/baselines/titan.h"
#include "lorasched/core/pdftsp.h"
#include "lorasched/experiments/scenario.h"
#include "lorasched/sim/engine.h"
#include "test_helpers.h"

namespace lorasched {
namespace {

Instance outage_instance(std::uint64_t seed, int outages,
                         Slot duration = 12) {
  ScenarioConfig config = testing::small_scenario(seed);
  config.arrival_rate = 3.0;
  config.outages = outages;
  config.outage_duration = duration;
  return make_instance(config);
}

bool slot_in_outage(const Instance& instance, NodeId node, Slot slot) {
  for (const Outage& o : instance.outages) {
    if (o.node == node && slot >= o.from && slot < o.to) return true;
  }
  return false;
}

TEST(Failures, LedgerBlockRejectsEverything) {
  const Cluster cluster = testing::mini_cluster();
  CapacityLedger ledger(cluster, 10);
  ledger.block(0, 3);
  EXPECT_TRUE(ledger.is_blocked(0, 3));
  EXPECT_FALSE(ledger.fits(0, 3, 1.0, 0.1));
  EXPECT_TRUE(ledger.fits(0, 2, 1.0, 0.1));   // neighbours unaffected
  EXPECT_TRUE(ledger.fits(1, 3, 1.0, 0.1));
  EXPECT_THROW(ledger.reserve(0, 3, 1.0, 0.1), std::logic_error);
}

TEST(Failures, BlockOutsideGridThrows) {
  const Cluster cluster = testing::mini_cluster();
  CapacityLedger ledger(cluster, 10);
  EXPECT_THROW(ledger.block(0, 10), std::invalid_argument);
  EXPECT_THROW(ledger.block(5, 0), std::invalid_argument);
}

TEST(Failures, ScenarioDrawsRequestedOutages) {
  const Instance instance = outage_instance(61, 5, 8);
  EXPECT_EQ(instance.outages.size(), 5u);
  for (const Outage& o : instance.outages) {
    EXPECT_GE(o.node, 0);
    EXPECT_LT(o.node, instance.cluster.node_count());
    EXPECT_LT(o.from, o.to);
    EXPECT_LE(o.to, instance.horizon);
  }
}

class PolicyUnderFailure : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<Policy> make_policy(const Instance& instance) const {
    switch (GetParam()) {
      case 0:
        return std::make_unique<Pdftsp>(pdftsp_config_for(instance),
                                        instance.cluster, instance.energy,
                                        instance.horizon);
      case 1:
        return std::make_unique<TitanPolicy>(TitanConfig{}, 3);
      case 2:
        return std::make_unique<EftPolicy>();
      default:
        return std::make_unique<NtmPolicy>(3);
    }
  }
};

TEST_P(PolicyUnderFailure, NoWorkLandsOnOutageCells) {
  const Instance instance = outage_instance(63, 6);
  auto policy = make_policy(instance);
  const SimResult result = run_simulation(instance, *policy);
  for (const Schedule& schedule : result.schedules) {
    for (const Assignment& a : schedule.run) {
      EXPECT_FALSE(slot_in_outage(instance, a.node, a.slot))
          << "work scheduled on node " << a.node << " during an outage at "
          << a.slot;
    }
  }
}

TEST_P(PolicyUnderFailure, RunsCleanlyUnderHeavyFailures) {
  const Instance instance = outage_instance(65, 20, 16);
  auto policy = make_policy(instance);
  EXPECT_NO_THROW((void)run_simulation(instance, *policy));
}

std::string policy_param_name(const ::testing::TestParamInfo<int>& info) {
  static const char* const kNames[] = {"pdFTSP", "Titan", "EFT", "NTM"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyUnderFailure,
                         ::testing::Values(0, 1, 2, 3), policy_param_name);

TEST(Failures, SaturatingOutagesSuppressWelfare) {
  // Blocking (nearly) the whole fleet must cut welfare dramatically
  // relative to the failure-free run.
  ScenarioConfig healthy_config = testing::small_scenario(67);
  healthy_config.arrival_rate = 3.0;
  const Instance healthy = make_instance(healthy_config);

  Instance crippled = healthy;
  for (NodeId k = 0; k < crippled.cluster.node_count(); ++k) {
    crippled.outages.push_back(Outage{k, 0, crippled.horizon - 4});
  }

  Pdftsp policy_a(pdftsp_config_for(healthy), healthy.cluster, healthy.energy,
                  healthy.horizon);
  Pdftsp policy_b(pdftsp_config_for(crippled), crippled.cluster,
                  crippled.energy, crippled.horizon);
  const Metrics ok = run_simulation(healthy, policy_a).metrics;
  const Metrics bad = run_simulation(crippled, policy_b).metrics;
  EXPECT_LT(bad.social_welfare, 0.25 * ok.social_welfare);
  EXPECT_LT(bad.admitted, ok.admitted);
}

TEST(Failures, OutageClampedToHorizon) {
  ScenarioConfig config = testing::small_scenario(69);
  config.outages = 3;
  config.outage_duration = 10000;  // far beyond the horizon
  const Instance instance = make_instance(config);
  Pdftsp policy(pdftsp_config_for(instance), instance.cluster, instance.energy,
                instance.horizon);
  EXPECT_NO_THROW((void)run_simulation(instance, policy));
}

}  // namespace
}  // namespace lorasched
