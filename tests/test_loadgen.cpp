// Load-generation subsystem (DESIGN.md §14): the firehose id packing and
// stream synthesis must be deterministic in the seed; SoakMetrics must
// account crafted gap / out-of-order / duplicate / restart-resequenced
// decision streams exactly; latency CDF quantiles must honor the log-bucket
// error bound; the verdict JSON must round-trip and merge exactly; and the
// whole loop — firehose through a real admission service, in-process and
// over the wire ingest seam — must come back clean.
#include "lorasched/loadgen/firehose.h"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "lorasched/core/pdftsp.h"
#include "lorasched/experiments/scenario.h"
#include "lorasched/io/serialize.h"
#include "lorasched/loadgen/arrival.h"
#include "lorasched/loadgen/soak_metrics.h"
#include "lorasched/loadgen/verdict.h"
#include "lorasched/net/firehose_ingest.h"
#include "lorasched/net/messages.h"
#include "lorasched/net/transport.h"
#include "lorasched/net/wire.h"
#include "lorasched/service/admission_service.h"
#include "test_helpers.h"

namespace lorasched::loadgen {
namespace {

using namespace std::chrono_literals;

// --- Bid id packing ---------------------------------------------------------

TEST(BidId, PackRoundTrip) {
  const std::uint32_t sources[] = {0, 1, 63, kMaxBidSource};
  const std::uint64_t seqs[] = {0, 1, 12345, kMaxBidSeq};
  for (const std::uint32_t source : sources) {
    for (const std::uint64_t seq : seqs) {
      const TaskId id = encode_bid_id(source, seq);
      EXPECT_GE(id, 0) << "ids must never go negative";
      EXPECT_EQ(bid_source(id), source);
      EXPECT_EQ(bid_seq(id), seq);
    }
  }
}

TEST(BidId, SourceMajorOrdering) {
  // A slot batch sorted by task id is sorted by (source, seq) — the
  // property the zero-out-of-order soak invariant rests on.
  EXPECT_LT(encode_bid_id(0, kMaxBidSeq), encode_bid_id(1, 0));
  EXPECT_LT(encode_bid_id(5, 10), encode_bid_id(5, 11));
}

TEST(BidId, RejectsOutOfRange) {
  EXPECT_THROW((void)encode_bid_id(kMaxBidSource + 1, 0),
               std::invalid_argument);
  EXPECT_THROW((void)encode_bid_id(0, kMaxBidSeq + 1), std::invalid_argument);
}

// --- Arrival shaping --------------------------------------------------------

TEST(Arrival, EveryMixNormalizesToBaseRate) {
  const ArrivalMix mixes[] = {ArrivalMix::kPoisson, ArrivalMix::kBurst,
                              ArrivalMix::kDiurnal, ArrivalMix::kMLaaS,
                              ArrivalMix::kPhilly,  ArrivalMix::kHelios};
  for (const ArrivalMix mix : mixes) {
    const std::vector<double> rates = arrival_rates(mix, 144, 50.0, 7);
    ASSERT_EQ(rates.size(), 144u);
    double sum = 0.0;
    for (const double r : rates) {
      EXPECT_GE(r, 0.0);
      sum += r;
    }
    // kBurst truncates a partial duty cycle at the horizon tail, so allow
    // a few percent; the analytic shapes normalize exactly.
    EXPECT_NEAR(sum / 144.0, 50.0, 5.0 * 0.05 * 50.0) << to_string(mix);
  }
}

TEST(Arrival, DeterministicAndParseRoundTrip) {
  const ArrivalMix mixes[] = {ArrivalMix::kPoisson, ArrivalMix::kBurst,
                              ArrivalMix::kDiurnal, ArrivalMix::kMLaaS,
                              ArrivalMix::kPhilly,  ArrivalMix::kHelios};
  for (const ArrivalMix mix : mixes) {
    EXPECT_EQ(arrival_rates(mix, 96, 20.0, 11), arrival_rates(mix, 96, 20.0, 11));
    EXPECT_EQ(parse_arrival_mix(to_string(mix)), mix);
  }
  EXPECT_THROW((void)parse_arrival_mix("bogus"), std::invalid_argument);
}

TEST(Arrival, PaceBidsZeroPeriodReplaysInOrder) {
  std::vector<Task> bids;
  for (const Slot arrival : {0, 0, 1, 3}) {
    bids.push_back(testing::make_task(static_cast<TaskId>(bids.size()),
                                      arrival, arrival + 4, 100.0));
  }
  std::vector<TaskId> emitted;
  std::vector<Slot> slot_ends;
  const std::size_t n = pace_bids(
      bids, 0ns, [&](const Task& bid) { emitted.push_back(bid.id); },
      [&](Slot slot) { slot_ends.push_back(slot); });
  EXPECT_EQ(n, bids.size());
  EXPECT_EQ(emitted, (std::vector<TaskId>{0, 1, 2, 3}));
  // Every slot up to the last arrival closes, including the empty slot 2.
  EXPECT_EQ(slot_ends, (std::vector<Slot>{0, 1, 2, 3}));
}

// --- Firehose stream synthesis ----------------------------------------------

std::vector<Task> generate_stream(std::uint32_t source, std::uint64_t seed,
                                  Slot window = 0) {
  const ScenarioConfig scenario = testing::small_scenario();
  const Instance env = make_instance(scenario);
  FirehoseConfig config;
  config.source = source;
  config.seed = seed;
  config.rate_per_slot = 4.0;
  config.horizon = scenario.horizon;
  config.arrival_window = window;
  config.taskgen = scenario.taskgen;
  return BidFirehose(config, env.cluster, env.energy, env.market).generate();
}

TEST(Firehose, SameSeedBitIdentical) {
  const std::vector<Task> a = generate_stream(3, 42);
  const std::vector<Task> b = generate_stream(3, 42);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    // The bid-line serialization covers every field bit-for-bit.
    EXPECT_EQ(io::format_bid_line(a[i]), io::format_bid_line(b[i]));
  }
}

TEST(Firehose, SeqDenseSortedAndWindowed) {
  const Slot window = 24;
  const std::vector<Task> stream = generate_stream(2, 7, window);
  ASSERT_GT(stream.size(), 0u);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(bid_source(stream[i].id), 2u);
    EXPECT_EQ(bid_seq(stream[i].id), i) << "seq must be dense from 0";
    EXPECT_LT(stream[i].arrival, window);
    if (i > 0) {
      EXPECT_LE(stream[i - 1].arrival, stream[i].arrival);
    }
  }
}

TEST(Firehose, SourcesAndSeedsDecorrelate) {
  EXPECT_NE(firehose_stream_seed(42, 0), firehose_stream_seed(42, 1));
  EXPECT_NE(firehose_stream_seed(42, 0), firehose_stream_seed(43, 0));
  const std::vector<Task> a = generate_stream(0, 42);
  const std::vector<Task> b = generate_stream(1, 42);
  ASSERT_GT(a.size(), 0u);
  ASSERT_GT(b.size(), 0u);
  // Beyond the id prefix, the streams must differ in substance.
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].arrival != b[i].arrival || a[i].work != b[i].work ||
              a[i].bid != b[i].bid;
  }
  EXPECT_TRUE(differs);
}

// --- SoakMetrics sequence accounting ----------------------------------------

TEST(SoakMetricsTest, CleanStream) {
  SoakMetrics soak;
  for (std::uint64_t seq = 0; seq < 5; ++seq) {
    soak.record_offered(1, seq, 1000 * static_cast<std::int64_t>(seq));
  }
  for (std::uint64_t seq = 0; seq < 5; ++seq) {
    soak.record_response(1, seq,
                         seq % 2 == 0 ? SoakStatus::kAdmitted
                                      : SoakStatus::kRejected,
                         1000 * static_cast<std::int64_t>(seq) + 500);
  }
  const SoakReport report = soak.report();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.totals.offered, 5u);
  EXPECT_EQ(report.totals.responded, 5u);
  EXPECT_EQ(report.totals.admitted, 3u);
  EXPECT_EQ(report.totals.rejected, 2u);
  EXPECT_EQ(report.totals.lost, 0u);
  EXPECT_EQ(soak.outstanding(), 0u);
}

TEST(SoakMetricsTest, GapCountsAsLost) {
  SoakMetrics soak;
  for (std::uint64_t seq = 0; seq < 4; ++seq) {
    soak.record_offered(0, seq, 0);
  }
  // seq 1 and 2 never come back.
  soak.record_response(0, 0, SoakStatus::kAdmitted, 10);
  soak.record_response(0, 3, SoakStatus::kAdmitted, 20);
  const SoakReport report = soak.report();
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.totals.lost, 2u);
  EXPECT_EQ(report.totals.out_of_order, 0u);
  EXPECT_EQ(soak.outstanding(), 2u);
}

TEST(SoakMetricsTest, OutOfOrderDecisionDetected) {
  SoakMetrics soak;
  soak.record_offered(0, 0, 0);
  soak.record_offered(0, 1, 0);
  soak.record_response(0, 1, SoakStatus::kAdmitted, 10);  // max decided: 1
  soak.record_response(0, 0, SoakStatus::kRejected, 20);  // regression
  const SoakReport report = soak.report();
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.totals.out_of_order, 1u);
  EXPECT_EQ(report.totals.responded, 2u);  // both still resolved
  EXPECT_EQ(report.totals.lost, 0u);
}

TEST(SoakMetricsTest, DuplicateResponseDetected) {
  SoakMetrics soak;
  soak.record_offered(0, 0, 0);
  soak.record_response(0, 0, SoakStatus::kAdmitted, 10);
  soak.record_response(0, 0, SoakStatus::kAdmitted, 20);  // replayed
  const SoakReport report = soak.report();
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.totals.duplicates, 1u);
  EXPECT_EQ(report.totals.responded, 1u);
  EXPECT_EQ(report.totals.admitted, 1u);
}

TEST(SoakMetricsTest, RestartResequencedSenderShowsAsDuplicates) {
  SoakMetrics soak;
  for (std::uint64_t seq = 0; seq < 3; ++seq) soak.record_offered(7, seq, 0);
  for (std::uint64_t seq = 0; seq < 3; ++seq) {
    soak.record_response(7, seq, SoakStatus::kAdmitted,
                         static_cast<std::int64_t>(seq) + 1);
  }
  // The sender restarts and re-walks its sequence space from 0; the
  // service's replayed decisions must not double-count.
  for (std::uint64_t seq = 0; seq < 3; ++seq) {
    soak.record_response(7, seq, SoakStatus::kAdmitted,
                         static_cast<std::int64_t>(seq) + 100);
  }
  const SoakReport report = soak.report();
  EXPECT_EQ(report.totals.duplicates, 3u);
  EXPECT_EQ(report.totals.responded, 3u);
  EXPECT_FALSE(report.clean());
}

TEST(SoakMetricsTest, ReofferedLiveSeqFlagged) {
  SoakMetrics soak;
  soak.record_offered(0, 5, 100);
  soak.record_offered(0, 5, 200);  // same seq still outstanding
  const SoakReport report = soak.report();
  EXPECT_EQ(report.totals.reoffered, 1u);
  EXPECT_EQ(report.totals.offered, 2u);
  EXPECT_EQ(soak.outstanding(), 1u);  // one map entry, first send time kept
}

TEST(SoakMetricsTest, ShedsExemptFromOrderCheck) {
  SoakMetrics soak;
  for (std::uint64_t seq = 0; seq < 3; ++seq) soak.record_offered(0, seq, 0);
  soak.record_response(0, 2, SoakStatus::kAdmitted, 10);  // max decided: 2
  // A shed reply for an earlier seq races back from the ingest edge —
  // legitimate, not out-of-order.
  soak.record_response(0, 0, SoakStatus::kShedFull, 20);
  // A *decision* for an earlier seq is still a violation.
  soak.record_response(0, 1, SoakStatus::kRejected, 30);
  const SoakReport report = soak.report();
  EXPECT_EQ(report.totals.shed, 1u);
  EXPECT_EQ(report.totals.out_of_order, 1u);
  EXPECT_EQ(report.totals.responded, 3u);
}

TEST(SoakMetricsTest, UnknownResponseDetected) {
  SoakMetrics soak;
  soak.record_offered(0, 0, 0);
  soak.record_response(0, 99, SoakStatus::kAdmitted, 10);  // never offered
  const SoakReport report = soak.report();
  EXPECT_EQ(report.totals.unknown, 1u);
  EXPECT_FALSE(report.clean());
}

TEST(SoakMetricsTest, PerSourceRowsIsolateFaults) {
  SoakMetrics soak;
  soak.record_offered(0, 0, 0);
  soak.record_offered(3, 0, 0);
  soak.record_response(0, 0, SoakStatus::kAdmitted, 10);
  // Source 3's bid is lost; source 0 stays clean.
  const SoakReport report = soak.report();
  ASSERT_EQ(report.sources.size(), 2u);
  EXPECT_EQ(report.sources[0].source, 0u);
  EXPECT_EQ(report.sources[0].lost, 0u);
  EXPECT_EQ(report.sources[1].source, 3u);
  EXPECT_EQ(report.sources[1].lost, 1u);
  EXPECT_EQ(report.totals.lost, 1u);
}

// --- Latency CDF quantiles --------------------------------------------------

TEST(SoakMetricsTest, LatencyQuantilesWithinLogBucketBound) {
  SoakMetrics soak;
  // 1000 samples at exactly 1ms..1000ms: the exact p-th percentile of the
  // population is p*10 ms.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::int64_t send_ns = static_cast<std::int64_t>(i) * 10'000'000;
    const std::int64_t latency_ns =
        static_cast<std::int64_t>(i + 1) * 1'000'000;
    soak.record_offered(0, i, send_ns);
    soak.record_response(0, i, SoakStatus::kAdmitted, send_ns + latency_ns);
  }
  const SoakReport report = soak.report();
  ASSERT_EQ(report.latency.count, 1000u);
  EXPECT_NEAR(report.latency.mean(), 0.5005, 1e-9);  // sum/count is exact
  // 8 buckets/octave bounds quantile relative error at 2^(1/8)-1 ~ 9.05%.
  const double bound = std::pow(2.0, 1.0 / 8.0) - 1.0 + 1e-6;
  for (const double p : {50.0, 90.0, 99.0, 99.9}) {
    const double exact = p * 10.0 / 1000.0;  // seconds
    const double estimate = report.latency.percentile(p);
    EXPECT_NEAR(estimate, exact, exact * bound) << "p" << p;
  }
  // Admit-only histogram saw the same samples here.
  EXPECT_EQ(report.admit_latency.count, 1000u);
}

// --- Verdict JSON -----------------------------------------------------------

SoakReport sample_report() {
  SoakMetrics soak;
  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    const auto send = static_cast<std::int64_t>(seq) * 1000;
    soak.record_offered(seq % 3, seq / 3, send);
    soak.record_response(seq % 3, seq / 3,
                         seq % 5 == 0 ? SoakStatus::kRejected
                                      : SoakStatus::kAdmitted,
                         send + 50'000 + static_cast<std::int64_t>(seq));
  }
  soak.record_offered(0, 1000, 0);  // one lost bid -> verdict not ok
  return soak.report();
}

TEST(Verdict, JsonRoundTripsExactly) {
  const SoakReport report = sample_report();
  const obs::Json doc = verdict_json(report);
  const SoakReport back = parse_verdict(obs::Json::parse(doc.dump()));
  EXPECT_EQ(back.totals.offered, report.totals.offered);
  EXPECT_EQ(back.totals.responded, report.totals.responded);
  EXPECT_EQ(back.totals.admitted, report.totals.admitted);
  EXPECT_EQ(back.totals.rejected, report.totals.rejected);
  EXPECT_EQ(back.totals.lost, report.totals.lost);
  EXPECT_FALSE(back.clean());
  ASSERT_EQ(back.sources.size(), report.sources.size());
  for (std::size_t i = 0; i < back.sources.size(); ++i) {
    EXPECT_EQ(back.sources[i].source, report.sources[i].source);
    EXPECT_EQ(back.sources[i].offered, report.sources[i].offered);
  }
  // Raw bucket counts survive, so re-derived quantiles match bit-for-bit.
  ASSERT_EQ(back.latency.counts, report.latency.counts);
  EXPECT_EQ(back.latency.count, report.latency.count);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.latency.percentile(99.0)),
            std::bit_cast<std::uint64_t>(report.latency.percentile(99.0)));
}

TEST(Verdict, MergeSumsPartsExactly) {
  // Two disjoint partial runs vs. one combined run over the same samples:
  // the merge must be exact, not quantile-of-quantiles.
  SoakMetrics part_a;
  SoakMetrics part_b;
  SoakMetrics combined;
  for (std::uint64_t i = 0; i < 200; ++i) {
    SoakMetrics& part = i % 2 == 0 ? part_a : part_b;
    const std::uint32_t source = i % 2 == 0 ? 0u : 1u;
    const auto send = static_cast<std::int64_t>(i) * 1000;
    const auto recv = send + 1'000'000 + static_cast<std::int64_t>(i) * 7'000;
    part.record_offered(source, i / 2, send);
    part.record_response(source, i / 2, SoakStatus::kAdmitted, recv);
    combined.record_offered(source, i / 2, send);
    combined.record_response(source, i / 2, SoakStatus::kAdmitted, recv);
  }
  const SoakReport merged =
      merge_reports({part_a.report(), part_b.report()});
  const SoakReport whole = combined.report();
  EXPECT_TRUE(merged.clean());
  EXPECT_EQ(merged.totals.offered, whole.totals.offered);
  EXPECT_EQ(merged.totals.admitted, whole.totals.admitted);
  ASSERT_EQ(merged.sources.size(), 2u);
  ASSERT_EQ(merged.latency.counts, whole.latency.counts);
  EXPECT_EQ(merged.latency.count, whole.latency.count);
  for (const double p : {50.0, 99.0, 99.9}) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(merged.latency.percentile(p)),
              std::bit_cast<std::uint64_t>(whole.latency.percentile(p)));
  }
  EXPECT_THROW((void)parse_verdict(obs::Json::parse("{\"schema\":\"x\"}")),
               std::invalid_argument);
}

// --- Wire codecs ------------------------------------------------------------

TEST(WireBid, CodecsRoundTripBitExactly) {
  net::BidSubmitMsg submit;
  submit.source = 9;
  submit.seq = (std::uint64_t{1} << 40) + 17;
  submit.send_ns = -1234567890123;
  submit.task = testing::make_task(encode_bid_id(9, 17), 3, 9, 500.0);
  const net::BidSubmitMsg submit2 =
      net::decode_bid_submit(net::encode(submit));
  EXPECT_EQ(submit2.source, submit.source);
  EXPECT_EQ(submit2.seq, submit.seq);
  EXPECT_EQ(submit2.send_ns, submit.send_ns);
  EXPECT_EQ(io::format_bid_line(submit2.task),
            io::format_bid_line(submit.task));

  net::BidDecisionMsg decision;
  decision.source = 9;
  decision.seq = 17;
  decision.send_ns = 42;
  decision.task = encode_bid_id(9, 17);
  decision.status = net::BidStatus::kShedClosed;
  decision.payment = 0.1 + 0.2;
  decision.decided_slot = 5;
  const net::BidDecisionMsg decision2 =
      net::decode_bid_decision(net::encode(decision));
  EXPECT_EQ(decision2.status, decision.status);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(decision2.payment),
            std::bit_cast<std::uint64_t>(decision.payment));
  EXPECT_EQ(decision2.decided_slot, decision.decided_slot);
  EXPECT_EQ(decision2.task, decision.task);

  net::BidStreamEndMsg end;
  end.source = 3;
  end.offered = 1'000'000;
  const net::BidStreamEndMsg end2 =
      net::decode_bid_stream_end(net::encode(end));
  EXPECT_EQ(end2.source, end.source);
  EXPECT_EQ(end2.offered, end.offered);
}

// --- End-to-end: firehose through a real service ----------------------------

TEST(SoakService, InProcessSeamRunsClean) {
  const ScenarioConfig scenario = testing::small_scenario();
  const Instance env = make_instance(scenario);
  std::vector<Task> bids;
  for (const std::uint32_t source : {0u, 1u}) {
    FirehoseConfig config;
    config.source = source;
    config.rate_per_slot = 2.0;
    config.horizon = env.horizon;
    config.arrival_window = env.horizon - 8;  // leave drain headroom
    config.taskgen = scenario.taskgen;
    for (Task& bid :
         BidFirehose(config, env.cluster, env.energy, env.market).generate()) {
      bids.push_back(std::move(bid));
    }
  }
  ASSERT_GT(bids.size(), 0u);

  Pdftsp policy(pdftsp_config_for(env), env.cluster, env.energy, env.horizon);
  service::ServiceConfig config;
  config.queue_capacity = bids.size() + 1;
  config.late_bids = service::LateBidMode::kClamp;
  service::AdmissionService server(env, policy, config);
  SoakMetrics soak;
  server.add_subscriber(&soak);

  for (const Task& bid : bids) {
    soak.record_offered(bid_source(bid.id), bid_seq(bid.id),
                        SoakMetrics::now_ns());
    ASSERT_EQ(server.submit(bid), service::SubmitResult::kAccepted);
  }
  server.close();
  for (Slot t = 0; t < env.horizon; ++t) server.step();

  const SoakReport report = soak.report();
  EXPECT_TRUE(report.clean())
      << "lost " << report.totals.lost << " ooo "
      << report.totals.out_of_order << " dup " << report.totals.duplicates;
  EXPECT_EQ(report.totals.offered, bids.size());
  EXPECT_EQ(report.totals.responded, bids.size());
  EXPECT_GT(report.latency.count, 0u);
}

TEST(SoakService, WireIngestSeamRunsClean) {
  const ScenarioConfig scenario = testing::small_scenario();
  const Instance env = make_instance(scenario);
  FirehoseConfig firehose_config;
  firehose_config.source = 4;
  firehose_config.rate_per_slot = 2.0;
  firehose_config.horizon = env.horizon;
  firehose_config.arrival_window = env.horizon - 8;
  firehose_config.taskgen = scenario.taskgen;
  const std::vector<Task> bids =
      BidFirehose(firehose_config, env.cluster, env.energy, env.market)
          .generate();
  ASSERT_GT(bids.size(), 0u);

  Pdftsp policy(pdftsp_config_for(env), env.cluster, env.energy, env.horizon);
  service::ServiceConfig config;
  config.queue_capacity = bids.size() + 1;
  config.late_bids = service::LateBidMode::kClamp;
  service::AdmissionService server(env, policy, config);

  net::FirehoseIngest::Config ingest_config;
  ingest_config.expected_streams = 1;
  net::FirehoseIngest ingest(
      ingest_config, [&server](const Task& bid) { return server.submit(bid); },
      [&server] { server.close(); });
  net::IngestSubscriber relay(ingest);
  server.add_subscriber(&relay);

  // The consumer drives the service until the stream-end quiesce closes
  // the queue, after which run() fast-forwards to the horizon.
  std::thread consumer([&server] { server.run(200us); });

  SoakMetrics soak;
  net::Connection client(
      net::Socket::connect("127.0.0.1", ingest.port()), net::Connection::Config{},
      [&soak](net::Frame&& frame) {
        if (frame.type != net::MsgType::kBidDecision) return;
        const net::BidDecisionMsg msg =
            net::decode_bid_decision(frame.payload);
        soak.record_response(msg.source, msg.seq,
                             static_cast<SoakStatus>(msg.status),
                             SoakMetrics::now_ns());
      },
      [](const std::string&) {});
  for (const Task& bid : bids) {
    net::BidSubmitMsg msg;
    msg.source = 4;
    msg.seq = bid_seq(bid.id);
    msg.send_ns = SoakMetrics::now_ns();
    msg.task = bid;
    soak.record_offered(msg.source, msg.seq, msg.send_ns);
    ASSERT_TRUE(client.send(net::MsgType::kBidSubmit, net::encode(msg)));
  }
  net::BidStreamEndMsg end;
  end.source = 4;
  end.offered = bids.size();
  ASSERT_TRUE(client.send(net::MsgType::kBidStreamEnd, net::encode(end)));

  consumer.join();
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (soak.outstanding() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  ingest.stop();

  const SoakReport report = soak.report();
  EXPECT_TRUE(report.clean())
      << "lost " << report.totals.lost << " ooo "
      << report.totals.out_of_order << " dup " << report.totals.duplicates
      << " unknown " << report.totals.unknown;
  EXPECT_EQ(report.totals.responded, bids.size());
  EXPECT_EQ(ingest.pending(), 0u);
  EXPECT_EQ(ingest.streams_ended(), 1u);
}

}  // namespace
}  // namespace lorasched::loadgen
