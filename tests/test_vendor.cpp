#include "lorasched/workload/vendor.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_helpers.h"

namespace lorasched {
namespace {

using testing::make_task;

Task prep_task(TaskId id = 0) {
  Task task = make_task(id, 0, 20, 8000.0);
  task.dataset_samples = 8000.0;
  task.needs_prep = true;
  return task;
}

TEST(Marketplace, NoQuotesForTasksWithoutPrep) {
  Marketplace market({}, 1);
  Task task = prep_task();
  task.needs_prep = false;
  EXPECT_TRUE(market.quotes(task).empty());
}

TEST(Marketplace, QuotesOnePerVendor) {
  Marketplace::Config config;
  config.vendor_count = 7;
  Marketplace market(config, 1);
  EXPECT_EQ(market.quotes(prep_task()).size(), 7u);
}

TEST(Marketplace, QuotesDeterministicPerTask) {
  Marketplace market({}, 5);
  const auto a = market.quotes(prep_task(3));
  const auto b = market.quotes(prep_task(3));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].price, b[i].price);
    EXPECT_EQ(a[i].delay, b[i].delay);
  }
}

TEST(Marketplace, DifferentTasksGetDifferentQuotes) {
  Marketplace market({}, 5);
  const auto a = market.quotes(prep_task(1));
  const auto b = market.quotes(prep_task(2));
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].price != b[i].price) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Marketplace, PriceDelayTradeoffHolds) {
  // Vendor 0 is the cheapest and slowest; the last is priciest and fastest.
  Marketplace::Config config;
  config.vendor_count = 5;
  config.price_jitter = 0.0;
  Marketplace market(config, 9);
  const auto quotes = market.quotes(prep_task());
  EXPECT_LT(quotes.front().price, quotes.back().price);
  EXPECT_GT(quotes.front().delay, quotes.back().delay);
}

TEST(Marketplace, DelaysWithinConfiguredBand) {
  Marketplace::Config config;
  config.delay_lo = 2;
  config.delay_hi = 6;
  Marketplace market(config, 3);
  for (TaskId id = 0; id < 50; ++id) {
    for (const VendorQuote& q : market.quotes(prep_task(id))) {
      EXPECT_GE(q.delay, 2);
      EXPECT_LE(q.delay, 7);  // +1 jitter
      EXPECT_GE(q.price, 0.0);
    }
  }
}

TEST(Marketplace, PricesScaleWithDatasetSize) {
  Marketplace::Config config;
  config.price_jitter = 0.0;
  Marketplace market(config, 3);
  Task small = prep_task(1);
  small.dataset_samples = 1000.0;
  Task large = prep_task(1);
  large.dataset_samples = 10000.0;
  EXPECT_NEAR(market.quotes(large)[0].price,
              10.0 * market.quotes(small)[0].price, 1e-9);
}

TEST(Marketplace, MeanPriceMidRate) {
  Marketplace::Config config;
  config.price_lo = 0.1;
  config.price_hi = 0.3;
  Marketplace market(config, 3);
  EXPECT_NEAR(market.mean_price(2000.0), 0.2 * 2.0, 1e-12);
}

TEST(Marketplace, RejectsInvalidConfig) {
  Marketplace::Config bad;
  bad.vendor_count = 0;
  EXPECT_THROW(Marketplace(bad, 1), std::invalid_argument);
  Marketplace::Config neg;
  neg.price_lo = -1.0;
  EXPECT_THROW(Marketplace(neg, 1), std::invalid_argument);
  Marketplace::Config delays;
  delays.delay_lo = 5;
  delays.delay_hi = 2;
  EXPECT_THROW(Marketplace(delays, 1), std::invalid_argument);
}

TEST(Marketplace, SingleVendorWorks) {
  Marketplace::Config config;
  config.vendor_count = 1;
  Marketplace market(config, 1);
  EXPECT_EQ(market.quotes(prep_task()).size(), 1u);
}

}  // namespace
}  // namespace lorasched
