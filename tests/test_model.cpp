// Tests for the transformer/LoRA/GPU performance model — the analytic
// substitute for the paper's hardware profiling run (DESIGN.md §3).
#include <gtest/gtest.h>

#include "lorasched/model/lora.h"
#include "lorasched/model/perf_model.h"
#include "lorasched/model/transformer.h"

namespace lorasched::model {
namespace {

TEST(Transformer, Gpt2SmallParameterCountIsCanonical) {
  // GPT-2 small is the 124M-parameter model.
  const TransformerSpec spec = gpt2_small();
  EXPECT_NEAR(spec.total_params(), 124e6, 4e6);
}

TEST(Transformer, Gpt2MediumLargerThanSmall) {
  EXPECT_GT(gpt2_medium().total_params(), 2.5 * gpt2_small().total_params());
}

TEST(Transformer, Llama7bParameterCount) {
  const TransformerSpec spec = llama_7b();
  EXPECT_NEAR(spec.total_params(), 6.7e9, 0.5e9);
}

TEST(Transformer, BlockAccountingAddsUp) {
  const TransformerSpec spec = gpt2_small();
  EXPECT_DOUBLE_EQ(spec.attention_params(), 4.0 * 768.0 * 768.0);
  EXPECT_DOUBLE_EQ(spec.mlp_params(), 2.0 * 768.0 * 3072.0);
}

TEST(Transformer, TrainFlopsFollowSixNdRule) {
  const TransformerSpec spec = gpt2_small();
  EXPECT_NEAR(spec.train_flops_per_sample(),
              6.0 * spec.total_params() * spec.seq_len,
              1.0);
}

TEST(Lora, AdapterParamsTinyFractionOfBase) {
  // The paper's headline: LoRA cuts trainable parameters by orders of
  // magnitude (GPT-3: 175B -> 37M, a ~4700x reduction).
  const TransformerSpec base = gpt2_small();
  const LoraSpec lora;
  const double fraction = lora.adapter_params(base) / base.total_params();
  EXPECT_LT(fraction, 0.01);
  EXPECT_GT(fraction, 1e-5);
}

TEST(Lora, AdapterParamsScaleWithRank) {
  const TransformerSpec base = gpt2_small();
  LoraSpec r8;
  r8.rank = 8;
  LoraSpec r16;
  r16.rank = 16;
  EXPECT_NEAR(r16.adapter_params(base), 2.0 * r8.adapter_params(base), 1.0);
}

TEST(Lora, LoraStepCheaperThanDense) {
  const TransformerSpec base = gpt2_small();
  const LoraSpec lora;
  EXPECT_LT(lora.train_flops_per_sample(base), base.train_flops_per_sample());
  EXPECT_GT(lora.train_flops_per_sample(base),
            0.5 * base.train_flops_per_sample());
}

TEST(Lora, TaskMemoryInPaperRange) {
  // The scenario generator draws r_i in [2, 8] GB; batch sizes 8..28 should
  // span that bracket.
  const TransformerSpec base = gpt2_small();
  LoraSpec small_batch;
  small_batch.batch_size = 8;
  LoraSpec big_batch;
  big_batch.batch_size = 28;
  EXPECT_GT(small_batch.task_memory_gb(base), 1.5);
  EXPECT_LT(small_batch.task_memory_gb(base), 4.0);
  EXPECT_GT(big_batch.task_memory_gb(base), 6.0);
  EXPECT_LT(big_batch.task_memory_gb(base), 10.0);
}

TEST(Lora, SharedBaseMemorySmallForGpt2LargeForLlama) {
  EXPECT_LT(LoraSpec::base_memory_gb(gpt2_small()), 2.5);
  EXPECT_GT(LoraSpec::base_memory_gb(llama_7b()), 12.0);
}

TEST(PerfModel, DerivedThroughputMatchesCalibratedProfiles) {
  // The derived numbers must agree with the hard-coded calibration in
  // cluster/gpu_profile.cpp within 5% so the two sources never drift.
  const TransformerSpec base = gpt2_small();
  const LoraSpec lora;
  const double a100 = samples_per_slot(a100_spec(), base, lora);
  const double a40 = samples_per_slot(a40_spec(), base, lora);
  EXPECT_NEAR(a100, a100_profile().compute_per_slot,
              0.05 * a100_profile().compute_per_slot);
  EXPECT_NEAR(a40, a40_profile().compute_per_slot,
              0.05 * a40_profile().compute_per_slot);
}

TEST(PerfModel, DeriveProfileCopiesDatasheet) {
  const GpuProfile profile =
      derive_profile(a100_spec(), gpt2_small(), LoraSpec{});
  EXPECT_EQ(profile.name, "A100-80GB");
  EXPECT_DOUBLE_EQ(profile.mem_gb, 80.0);
  EXPECT_DOUBLE_EQ(profile.power_kw, 0.4);
  EXPECT_DOUBLE_EQ(profile.hourly_cost, 1.50);
  EXPECT_GT(profile.compute_per_slot, 0.0);
}

TEST(PerfModel, ThroughputScalesInverselyWithModelSize) {
  const LoraSpec lora;
  const double small = samples_per_second(a100_spec(), gpt2_small(), lora);
  const double medium = samples_per_second(a100_spec(), gpt2_medium(), lora);
  EXPECT_GT(small, 2.0 * medium);
}

TEST(PerfModel, SlotLengthScalesLinearly) {
  const LoraSpec lora;
  const double ten_min = samples_per_slot(a100_spec(), gpt2_small(), lora, 600);
  const double one_hour =
      samples_per_slot(a100_spec(), gpt2_small(), lora, 3600);
  EXPECT_NEAR(one_hour, 6.0 * ten_min, 1e-6 * one_hour);
}

}  // namespace
}  // namespace lorasched::model
