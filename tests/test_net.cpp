// Distributed control plane (DESIGN.md §11): wire primitives and frame
// decoding must reject every malformed input with WireError; every typed
// message must round-trip bit-exactly (doubles cross as fixed64 bit
// patterns); the TCP transport must detect peer failure via heartbeats; and
// a ShardedService over RemoteShardHandles must be *bit-identical* to the
// in-process service at the same K — including after an agent crash
// (graceful degradation, no hang) and after a reconnect-and-resync.
#include "lorasched/net/remote_shard.h"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include <sys/socket.h>

#include "lorasched/experiments/scenario.h"
#include "lorasched/io/serialize.h"
#include "lorasched/net/host_agent.h"
#include "lorasched/net/http.h"
#include "lorasched/net/messages.h"
#include "lorasched/net/transport.h"
#include "lorasched/net/wire.h"
#include "lorasched/obs/cluster_trace.h"
#include "lorasched/obs/federation.h"
#include "lorasched/shard/sharded_service.h"
#include "test_helpers.h"

namespace lorasched::net {
namespace {

using namespace std::chrono_literals;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

// --- Wire primitives --------------------------------------------------------

TEST(Wire, VarintRoundTrip) {
  const std::uint64_t values[] = {
      0, 1, 127, 128, 300, (std::uint64_t{1} << 32) + 5,
      std::numeric_limits<std::uint64_t>::max()};
  WireWriter w;
  for (const std::uint64_t v : values) w.put_varint(v);
  WireReader r(w.bytes());
  for (const std::uint64_t v : values) EXPECT_EQ(r.get_varint("v"), v);
  r.expect_done("varints");
}

TEST(Wire, SvarintRoundTrip) {
  const std::int64_t values[] = {0,  -1, 1, 63, -64, 1234567,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  WireWriter w;
  for (const std::int64_t v : values) w.put_svarint(v);
  WireReader r(w.bytes());
  for (const std::int64_t v : values) EXPECT_EQ(r.get_svarint("v"), v);
}

TEST(Wire, DoublesCrossBitExactly) {
  const double values[] = {0.0,
                           -0.0,
                           0.1 + 0.2,
                           1e308,
                           5e-324,  // smallest denormal
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN()};
  WireWriter w;
  for (const double v : values) w.put_f64(v);
  WireReader r(w.bytes());
  for (const double v : values) {
    EXPECT_EQ(bits(r.get_f64("v")), bits(v));
  }
}

TEST(Wire, RejectsOverlongVarint) {
  // 0 encoded in two bytes (0x80 0x00) is overlong and must not decode.
  const std::vector<std::uint8_t> overlong{0x80, 0x00};
  WireReader r(overlong);
  EXPECT_THROW((void)r.get_varint("overlong"), WireError);
}

TEST(Wire, RejectsVarintOverflow) {
  // Ten continuation-heavy bytes pushing past 64 bits.
  const std::vector<std::uint8_t> huge{0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                                       0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
  WireReader r(huge);
  EXPECT_THROW((void)r.get_varint("overflow"), WireError);
}

TEST(Wire, RejectsTruncation) {
  WireWriter w;
  w.put_f64(3.5);
  {
    WireReader r(w.bytes().data(), 3);
    EXPECT_THROW((void)r.get_f64("f"), WireError);
  }
  WireWriter s;
  s.put_varint(5);  // string length 5 with no bytes behind it
  WireReader r(s.bytes());
  EXPECT_THROW((void)r.get_string("s"), WireError);
}

TEST(Wire, RejectsAbsurdCounts) {
  WireWriter w;
  w.put_varint(kMaxWireElements + 1);
  WireReader r(w.bytes());
  EXPECT_THROW((void)r.get_count("count"), WireError);
}

TEST(Wire, RejectsTrailingBytes) {
  WireWriter w;
  w.put_u8(1);
  w.put_u8(2);
  WireReader r(w.bytes());
  (void)r.get_u8("first");
  EXPECT_THROW(r.expect_done("payload"), WireError);
}

// --- Frame decoding ---------------------------------------------------------

TEST(FrameDecoding, ByteAtATimeReassembly) {
  const auto a = encode_frame(MsgType::kPing, {});
  const auto b = encode_frame(MsgType::kError, encode(ErrorMsg{3, "x"}));
  std::vector<std::uint8_t> stream = a;
  stream.insert(stream.end(), b.begin(), b.end());
  FrameDecoder decoder;
  std::vector<Frame> frames;
  Frame frame;
  for (const std::uint8_t byte : stream) {
    decoder.feed(&byte, 1);
    while (decoder.next(frame)) frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, MsgType::kPing);
  EXPECT_EQ(frames[1].type, MsgType::kError);
  EXPECT_EQ(decode_error(frames[1].payload).message, "x");
}

TEST(FrameDecoding, RejectsBadMagic) {
  auto bytes = encode_frame(MsgType::kPing, {});
  bytes[0] = 'X';
  FrameDecoder decoder;
  EXPECT_THROW(
      {
        decoder.feed(bytes.data(), bytes.size());
        Frame frame;
        while (decoder.next(frame)) {
        }
      },
      WireError);
}

TEST(FrameDecoding, RejectsVersionSkew) {
  auto bytes = encode_frame(MsgType::kPing, {});
  bytes[4] = kWireVersion + 1;
  FrameDecoder decoder;
  try {
    decoder.feed(bytes.data(), bytes.size());
    Frame frame;
    while (decoder.next(frame)) {
    }
    FAIL() << "version skew must throw";
  } catch (const WireError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(FrameDecoding, RejectsUnknownType) {
  auto bytes = encode_frame(MsgType::kPing, {});
  bytes[5] = 200;
  FrameDecoder decoder;
  EXPECT_THROW(
      {
        decoder.feed(bytes.data(), bytes.size());
        Frame frame;
        while (decoder.next(frame)) {
        }
      },
      WireError);
}

TEST(FrameDecoding, RejectsAbsurdPayloadLength) {
  std::vector<std::uint8_t> bytes(kWireMagic, kWireMagic + 4);
  bytes.push_back(kWireVersion);
  bytes.push_back(static_cast<std::uint8_t>(MsgType::kOffer));
  WireWriter w;
  w.put_varint(kMaxWirePayload + 1);
  for (const std::uint8_t byte : w.bytes()) bytes.push_back(byte);
  FrameDecoder decoder;
  EXPECT_THROW(
      {
        decoder.feed(bytes.data(), bytes.size());
        Frame frame;
        while (decoder.next(frame)) {
        }
      },
      WireError);
}

TEST(FrameDecoding, PartialFrameIsNotAFrame) {
  const auto bytes = encode_frame(MsgType::kError, encode(ErrorMsg{1, "yo"}));
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size() - 1);
  Frame frame;
  EXPECT_FALSE(decoder.next(frame));
}

// --- Typed messages ---------------------------------------------------------

Task gnarly_task() {
  Task task;
  task.id = 987654321;
  task.arrival = 3;
  task.deadline = 47;
  task.dataset_samples = 0.1 + 0.2;  // not exactly representable
  task.epochs = 5;
  task.work = 1.5e6;
  task.mem_gb = 2.0 / 3.0;
  task.compute_share = 1.0 / 3.0;
  task.needs_prep = true;
  task.model = 2;
  task.bid = 12.345678901234567;
  task.true_value = 12.0;
  return task;
}

TEST(Messages, OfferRoundTripIsBitExact) {
  OfferMsg msg;
  msg.shard_id = 3;
  msg.task = gnarly_task();
  const OfferMsg back = decode_offer(encode(msg));
  EXPECT_EQ(back.shard_id, msg.shard_id);
  EXPECT_EQ(back.task.id, msg.task.id);
  EXPECT_EQ(back.task.arrival, msg.task.arrival);
  EXPECT_EQ(back.task.deadline, msg.task.deadline);
  EXPECT_EQ(bits(back.task.dataset_samples), bits(msg.task.dataset_samples));
  EXPECT_EQ(back.task.epochs, msg.task.epochs);
  EXPECT_EQ(bits(back.task.work), bits(msg.task.work));
  EXPECT_EQ(bits(back.task.mem_gb), bits(msg.task.mem_gb));
  EXPECT_EQ(bits(back.task.compute_share), bits(msg.task.compute_share));
  EXPECT_EQ(back.task.needs_prep, msg.task.needs_prep);
  EXPECT_EQ(back.task.model, msg.task.model);
  EXPECT_EQ(bits(back.task.bid), bits(msg.task.bid));
  EXPECT_EQ(bits(back.task.true_value), bits(msg.task.true_value));
}

TEST(Messages, AssignShardRoundTrip) {
  AssignShardMsg msg;
  msg.shard_id = 2;
  msg.members = {1, 4, 6};
  msg.alpha = 2.25;
  msg.beta = 1.0 / 7.0;
  msg.welfare_unit = 0.01;
  msg.share_options = {0.25, 0.5, 1.0};
  msg.parallel_candidates = 3;
  msg.time_decisions = false;
  msg.inbox_capacity = 77;
  const AssignShardMsg back = decode_assign_shard(encode(msg));
  EXPECT_EQ(back.shard_id, msg.shard_id);
  EXPECT_EQ(back.members, msg.members);
  EXPECT_EQ(bits(back.alpha), bits(msg.alpha));
  EXPECT_EQ(bits(back.beta), bits(msg.beta));
  EXPECT_EQ(bits(back.welfare_unit), bits(msg.welfare_unit));
  ASSERT_EQ(back.share_options.size(), msg.share_options.size());
  for (std::size_t i = 0; i < msg.share_options.size(); ++i) {
    EXPECT_EQ(bits(back.share_options[i]), bits(msg.share_options[i]));
  }
  EXPECT_EQ(back.parallel_candidates, msg.parallel_candidates);
  EXPECT_EQ(back.time_decisions, msg.time_decisions);
  EXPECT_EQ(back.inbox_capacity, msg.inbox_capacity);
}

TEST(Messages, RoundResultsRoundTrip) {
  RoundResultsMsg msg;
  msg.shard_id = 1;
  msg.slot = 9;
  WireDecision admit;
  admit.task = 17;
  admit.admit = true;
  admit.payment = 3.14159;
  admit.decide_seconds = 0.0;
  admit.schedule.task = 17;
  admit.schedule.vendor = 2;
  admit.schedule.vendor_price = 0.5;
  admit.schedule.prep_delay = 1;
  admit.schedule.run = {{0, 10}, {0, 11}, {1, 12}};
  admit.schedule.total_compute = 750.0;
  admit.schedule.total_mem = 6.0;
  admit.schedule.norm_compute = 0.75;
  admit.schedule.norm_mem = 0.125;
  admit.schedule.energy_cost = 0.9;
  admit.schedule.welfare_gain = 7.7;
  admit.schedule.share_override = 0.5;
  WireDecision reject;
  reject.task = 18;
  msg.results = {admit, reject};
  msg.snapshot.published_slot = 9;
  msg.snapshot.free_compute = 1234.5;
  msg.snapshot.classes = {{10.0, 2.0, 0.25, 0.5}, {20.0, 4.0, 0.125, 0.0}};

  const RoundResultsMsg back = decode_round_results(encode(msg));
  EXPECT_EQ(back.shard_id, msg.shard_id);
  EXPECT_EQ(back.slot, msg.slot);
  ASSERT_EQ(back.results.size(), 2u);
  EXPECT_EQ(back.results[0].task, 17);
  EXPECT_TRUE(back.results[0].admit);
  EXPECT_EQ(bits(back.results[0].payment), bits(admit.payment));
  EXPECT_EQ(back.results[0].schedule.run, admit.schedule.run);
  EXPECT_EQ(back.results[0].schedule.vendor, admit.schedule.vendor);
  EXPECT_EQ(bits(back.results[0].schedule.total_compute),
            bits(admit.schedule.total_compute));
  EXPECT_EQ(bits(back.results[0].schedule.welfare_gain),
            bits(admit.schedule.welfare_gain));
  EXPECT_EQ(bits(back.results[0].schedule.share_override),
            bits(admit.schedule.share_override));
  EXPECT_EQ(back.results[1].task, 18);
  EXPECT_FALSE(back.results[1].admit);
  EXPECT_TRUE(back.results[1].schedule.empty());
  EXPECT_EQ(back.snapshot.published_slot, 9);
  ASSERT_EQ(back.snapshot.classes.size(), 2u);
  EXPECT_EQ(bits(back.snapshot.classes[0].mean_lambda), bits(0.25));
}

/// The satellite pin: a seqlock PriceBoard snapshot shipped over the wire
/// and republished into another board reads back bit-identically.
TEST(Messages, PriceBoardSummaryWireRoundTripIsBitExact) {
  shard::PriceBoard board(2, 3);
  shard::PriceSnapshot snap;
  snap.published_slot = 7;
  snap.free_compute = 0.1 + 0.2;
  snap.classes = {{1.0 / 3.0, 2.0 / 3.0, 1e-17, -0.0},
                  {5e-324, 1e308, 0.5, 0.25},
                  {0.0, 1.0, 2.0, 3.0}};
  board.publish(1, snap);

  PublishReplyMsg msg;
  msg.shard_id = 1;
  msg.snapshot = board.read(1);
  const PublishReplyMsg decoded = decode_publish_reply(encode(msg));

  shard::PriceBoard restored(2, 3);
  restored.publish(1, decoded.snapshot);
  const shard::PriceSnapshot back = restored.read(1);
  EXPECT_EQ(back.published_slot, snap.published_slot);
  EXPECT_EQ(bits(back.free_compute), bits(snap.free_compute));
  ASSERT_EQ(back.classes.size(), snap.classes.size());
  for (std::size_t c = 0; c < snap.classes.size(); ++c) {
    SCOPED_TRACE(c);
    EXPECT_EQ(bits(back.classes[c].free_compute),
              bits(snap.classes[c].free_compute));
    EXPECT_EQ(bits(back.classes[c].free_mem), bits(snap.classes[c].free_mem));
    EXPECT_EQ(bits(back.classes[c].mean_lambda),
              bits(snap.classes[c].mean_lambda));
    EXPECT_EQ(bits(back.classes[c].mean_phi), bits(snap.classes[c].mean_phi));
  }
}

TEST(Messages, StateReplyRoundTrip) {
  StateReplyMsg msg;
  msg.shard_id = 0;
  msg.state.booked_compute = 42.5;
  msg.state.policy_state = {0.1, -0.2, 3.0e-9};
  msg.state.ledger.used_compute = {1.0, 0.0, 0.5, 0.25};
  const StateReplyMsg back = decode_state_reply(encode(msg));
  EXPECT_EQ(bits(back.state.booked_compute), bits(msg.state.booked_compute));
  ASSERT_EQ(back.state.policy_state.size(), msg.state.policy_state.size());
  for (std::size_t i = 0; i < msg.state.policy_state.size(); ++i) {
    EXPECT_EQ(bits(back.state.policy_state[i]),
              bits(msg.state.policy_state[i]));
  }
  EXPECT_EQ(back.state.ledger.used_compute.size(),
            msg.state.ledger.used_compute.size());
}

TEST(Messages, DecodersRejectTruncatedPayloads) {
  const auto payload = encode(OfferMsg{0, gnarly_task()});
  for (const std::size_t cut : {std::size_t{0}, payload.size() / 2,
                                payload.size() - 1}) {
    const std::vector<std::uint8_t> trimmed(payload.begin(),
                                            payload.begin() +
                                                static_cast<std::ptrdiff_t>(
                                                    cut));
    EXPECT_THROW((void)decode_offer(trimmed), WireError) << cut;
  }
  // Trailing garbage is as malformed as truncation.
  auto padded = payload;
  padded.push_back(0);
  EXPECT_THROW((void)decode_offer(padded), WireError);
}

TEST(Messages, EnvDigestSeparatesScenarios) {
  const Instance a = make_instance(lorasched::testing::small_scenario(1));
  // Same seed, different fleet shape: the handshake must tell them apart
  // (same-shape different-seed scenarios share an environment by design —
  // the digest covers the fleet, market, and horizon, not the bid stream).
  auto bigger = lorasched::testing::small_scenario(1);
  bigger.nodes = 8;
  const Instance b = make_instance(bigger);
  EXPECT_NE(env_digest(a.cluster, a.market, a.horizon),
            env_digest(b.cluster, b.market, b.horizon));
  EXPECT_EQ(env_digest(a.cluster, a.market, a.horizon),
            env_digest(a.cluster, a.market, a.horizon));
  EXPECT_NE(env_digest(a.cluster, a.market, a.horizon),
            env_digest(a.cluster, a.market, a.horizon + 1));
}

// --- Transport --------------------------------------------------------------

struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<Frame> frames;
  std::string close_reason;
  int closes = 0;

  void on_frame(Frame&& frame) {
    std::lock_guard<std::mutex> lock(mutex);
    frames.push_back(std::move(frame));
    cv.notify_all();
  }
  void on_close(const std::string& reason) {
    std::lock_guard<std::mutex> lock(mutex);
    close_reason = reason;
    ++closes;
    cv.notify_all();
  }
  bool wait_frames(std::size_t n, std::chrono::milliseconds budget) {
    std::unique_lock<std::mutex> lock(mutex);
    return cv.wait_for(lock, budget, [&] { return frames.size() >= n; });
  }
  bool wait_close(std::chrono::milliseconds budget) {
    std::unique_lock<std::mutex> lock(mutex);
    return cv.wait_for(lock, budget, [&] { return closes > 0; });
  }
};

/// Accepts exactly one peer on a loopback listener.
Socket accept_one(Listener& listener) { return listener.accept(); }

TEST(Transport, LoopbackFramesFlowBothWays) {
  Listener listener(0);
  Socket server_sock;
  std::thread acceptor([&] { server_sock = accept_one(listener); });
  Socket client_sock = Socket::connect("127.0.0.1", listener.port());
  acceptor.join();

  Mailbox server_mail;
  Mailbox client_mail;
  Connection server(
      std::move(server_sock), {}, [&](Frame&& f) { server_mail.on_frame(std::move(f)); },
      [&](const std::string& r) { server_mail.on_close(r); });
  Connection client(
      std::move(client_sock), {}, [&](Frame&& f) { client_mail.on_frame(std::move(f)); },
      [&](const std::string& r) { client_mail.on_close(r); });

  ASSERT_TRUE(client.send(MsgType::kHello, encode(HelloMsg{99, 1, 1, 4, 1})));
  ASSERT_TRUE(server_mail.wait_frames(1, 5000ms));
  EXPECT_EQ(server_mail.frames[0].type, MsgType::kHello);
  EXPECT_EQ(decode_hello(server_mail.frames[0].payload).digest, 99u);

  ASSERT_TRUE(server.send(MsgType::kHelloAck, encode(HelloAckMsg{99})));
  ASSERT_TRUE(client_mail.wait_frames(1, 5000ms));
  EXPECT_EQ(client_mail.frames[0].type, MsgType::kHelloAck);
  EXPECT_GT(client.frames_sent(), 0u);
  EXPECT_GT(client.bytes_received(), 0u);
}

TEST(Transport, PeerDropRunsCloseHandlerOnce) {
  Listener listener(0);
  Socket server_sock;
  std::thread acceptor([&] { server_sock = accept_one(listener); });
  Socket client_sock = Socket::connect("127.0.0.1", listener.port());
  acceptor.join();

  Mailbox client_mail;
  auto server = std::make_unique<Connection>(
      std::move(server_sock), Connection::Config{}, [](Frame&&) {},
      [](const std::string&) {});
  Connection client(
      std::move(client_sock), {}, [&](Frame&& f) { client_mail.on_frame(std::move(f)); },
      [&](const std::string& r) { client_mail.on_close(r); });
  server.reset();  // peer goes away
  ASSERT_TRUE(client_mail.wait_close(5000ms));
  EXPECT_EQ(client_mail.closes, 1);
  EXPECT_FALSE(client.open());
  EXPECT_FALSE(client.send(MsgType::kPing, {}));
}

TEST(Transport, IdleTimeoutDetectsSilentPeer) {
  Listener listener(0);
  Socket server_sock;
  std::thread acceptor([&] { server_sock = accept_one(listener); });
  Socket client_sock = Socket::connect("127.0.0.1", listener.port());
  acceptor.join();

  Mailbox server_mail;
  Connection::Config watchful;
  watchful.idle_timeout = 200ms;  // no pings from the client -> dead
  Connection server(
      std::move(server_sock), watchful, [&](Frame&& f) { server_mail.on_frame(std::move(f)); },
      [&](const std::string& r) { server_mail.on_close(r); });
  Connection client(std::move(client_sock), {}, [](Frame&&) {},
                    [](const std::string&) {});
  EXPECT_TRUE(server_mail.wait_close(5000ms));
}

TEST(Transport, HeartbeatsKeepAnIdleLinkAlive) {
  Listener listener(0);
  Socket server_sock;
  std::thread acceptor([&] { server_sock = accept_one(listener); });
  Socket client_sock = Socket::connect("127.0.0.1", listener.port());
  acceptor.join();

  Connection::Config watchful;
  watchful.idle_timeout = 400ms;
  Connection server(std::move(server_sock), watchful, [](Frame&&) {},
                    [](const std::string&) {});
  Connection::Config chatty;
  chatty.ping_interval = 50ms;  // transport answers pongs by itself
  Connection client(std::move(client_sock), chatty, [](Frame&&) {},
                    [](const std::string&) {});
  std::this_thread::sleep_for(1000ms);
  EXPECT_TRUE(server.open());
  EXPECT_TRUE(client.open());
}

// --- Distributed service: helpers -------------------------------------------

std::unique_ptr<HostAgent> start_agent(const Instance& env,
                                       std::uint16_t port = 0) {
  HostAgent::Config config;
  config.port = port;
  config.ping_interval = 100ms;
  config.idle_timeout = 5000ms;
  auto agent = std::make_unique<HostAgent>(env, config);
  agent->start();
  return agent;
}

HelloMsg hello_for(const Instance& env, int shards) {
  HelloMsg hello;
  hello.digest = env_digest(env.cluster, env.market, env.horizon);
  hello.nodes = env.cluster.node_count();
  hello.classes = env.cluster.class_count();
  hello.horizon = env.horizon;
  hello.shards_total = shards;
  return hello;
}

std::shared_ptr<AgentLink> connect_link(
    const Instance& env, int shards, std::uint16_t port,
    std::chrono::milliseconds rpc_timeout = 20000ms) {
  LinkConfig config;
  config.port = port;
  config.ping_interval = 100ms;
  config.heartbeat_timeout = 5000ms;
  config.rpc_timeout = rpc_timeout;
  auto link = std::make_shared<AgentLink>(config, hello_for(env, shards));
  link->connect();
  return link;
}

shard::HandleFactory remote_factory(
    std::vector<std::shared_ptr<AgentLink>> links, PdftspConfig policy) {
  return [links = std::move(links), policy](
             int shard_id, std::vector<NodeId> members,
             const shard::ShardContext& ctx)
             -> std::unique_ptr<shard::ShardHandle> {
    return std::make_unique<RemoteShardHandle>(
        links[static_cast<std::size_t>(shard_id) % links.size()], policy,
        shard_id, std::move(members), ctx);
  };
}

void submit_all(shard::ShardedService& service, const Instance& env) {
  for (const Task& task : env.tasks) {
    ASSERT_EQ(service.submit(task), service::SubmitResult::kAccepted);
  }
  service.close();
}

void expect_same_outcomes(const std::vector<TaskOutcome>& a,
                          const std::vector<TaskOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].task, b[i].task);
    EXPECT_EQ(a[i].admitted, b[i].admitted);
    EXPECT_EQ(a[i].bid, b[i].bid);
    EXPECT_EQ(a[i].payment, b[i].payment);
    EXPECT_EQ(a[i].vendor, b[i].vendor);
    EXPECT_EQ(a[i].vendor_cost, b[i].vendor_cost);
    EXPECT_EQ(a[i].energy_cost, b[i].energy_cost);
    EXPECT_EQ(a[i].completion, b[i].completion);
    EXPECT_EQ(a[i].slots_used, b[i].slots_used);
  }
}

void expect_same_metrics(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.social_welfare, b.social_welfare);
  EXPECT_EQ(a.provider_utility, b.provider_utility);
  EXPECT_EQ(a.user_utility, b.user_utility);
  EXPECT_EQ(a.total_payments, b.total_payments);
  EXPECT_EQ(a.total_energy_cost, b.total_energy_cost);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.utilization, b.utilization);
}

// --- Distributed service: bit-identical to in-process -----------------------

TEST(RemoteService, BitIdenticalToInProcessAtSameK) {
  const Instance env = make_instance(lorasched::testing::small_scenario(13));
  const PdftspConfig policy = pdftsp_config_for(env);
  shard::ShardedConfig config;
  config.shards = 3;
  config.time_decisions = false;

  shard::ShardedService local(env, shard::make_pdftsp_factory(policy),
                              config);
  submit_all(local, env);
  while (!local.done()) local.step();

  auto agent_a = start_agent(env);
  auto agent_b = start_agent(env);
  std::vector<std::shared_ptr<AgentLink>> links = {
      connect_link(env, config.shards, agent_a->port()),
      connect_link(env, config.shards, agent_b->port())};
  shard::ShardedService remote(env, remote_factory(links, policy), config);
  submit_all(remote, env);
  while (!remote.done()) remote.step();

  // Checkpoints taken at the same point serialize byte-identically — the
  // strongest parity statement (policy duals, ledgers, outcomes, metrics).
  std::ostringstream local_bytes;
  io::write_sharded_checkpoint(local_bytes, local.checkpoint());
  std::ostringstream remote_bytes;
  io::write_sharded_checkpoint(remote_bytes, remote.checkpoint());
  EXPECT_EQ(local_bytes.str(), remote_bytes.str());

  EXPECT_EQ(remote.rerouted_bids(), local.rerouted_bids());
  EXPECT_EQ(remote.reroute_admits(), local.reroute_admits());
  EXPECT_EQ(remote.dead_shards(), 0);
  EXPECT_EQ(remote.failover_bids(), 0u);

  const SimResult local_result = local.finish();
  const SimResult remote_result = remote.finish();
  expect_same_outcomes(local_result.outcomes, remote_result.outcomes);
  expect_same_metrics(local_result.metrics, remote_result.metrics);

  for (const auto& link : links) link->send_shutdown();
  agent_a->wait();
  agent_b->wait();
}

// --- Distributed service: failure paths -------------------------------------

TEST(RemoteFault, AgentCrashMidRunDegradesInsteadOfHanging) {
  const Instance env = make_instance(lorasched::testing::small_scenario(5));
  const PdftspConfig policy = pdftsp_config_for(env);
  shard::ShardedConfig config;
  config.shards = 2;
  config.time_decisions = false;

  auto agent_a = start_agent(env);
  auto agent_b = start_agent(env);
  std::vector<std::shared_ptr<AgentLink>> links = {
      connect_link(env, 2, agent_a->port(), 2000ms),
      connect_link(env, 2, agent_b->port(), 2000ms)};
  shard::ShardedService service(env, remote_factory(links, policy), config);
  submit_all(service, env);

  const Slot kill_at = env.horizon / 3;
  while (!service.done()) {
    if (service.current_slot() == kill_at) {
      agent_b->stop();  // shard 1's host dies mid-run
    }
    service.step();
  }
  EXPECT_EQ(service.dead_shards(), 1);
  const SimResult result = service.finish();  // must not hang or throw
  EXPECT_GT(result.metrics.admitted, 0);
  // Every bid decided despite the dead shard.
  EXPECT_EQ(
      static_cast<std::size_t>(result.metrics.admitted +
                               result.metrics.rejected),
      env.tasks.size());
  links[0]->send_shutdown();
  agent_a->wait();
}

TEST(RemoteFault, SilentAgentTripsTheRpcTimeout) {
  const Instance env = make_instance(lorasched::testing::small_scenario(3));
  const std::uint64_t digest = env_digest(env.cluster, env.market, env.horizon);

  // A fake agent that completes the handshake, then never answers anything.
  Listener listener(0);
  std::mutex mutex;
  std::condition_variable cv;
  bool got_hello = false;
  bool finished = false;
  std::unique_ptr<Connection> conn;
  std::thread fake([&] {
    Socket sock;
    try {
      sock = listener.accept();
    } catch (const TransportError&) {
      return;
    }
    conn = std::make_unique<Connection>(
        std::move(sock), Connection::Config{},
        [&](Frame&& frame) {
          if (frame.type == MsgType::kHello) {
            std::lock_guard<std::mutex> lock(mutex);
            got_hello = true;
            cv.notify_all();
          }
        },
        [](const std::string&) {});
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return got_hello; });
    conn->send(MsgType::kHelloAck, encode(HelloAckMsg{digest}));
    cv.wait(lock, [&] { return finished; });
  });

  const PdftspConfig policy = pdftsp_config_for(env);
  shard::ShardedConfig config;
  config.shards = 1;
  auto link = connect_link(env, 1, listener.port(), /*rpc_timeout=*/300ms);
  // The first AssignShard RPC gets no reply: the link must fail within the
  // rpc timeout instead of wedging the leader forever.
  EXPECT_THROW(shard::ShardedService(env, remote_factory({link}, policy),
                                     config),
               shard::ShardUnavailable);
  EXPECT_FALSE(link->open());
  {
    std::lock_guard<std::mutex> lock(mutex);
    finished = true;
  }
  cv.notify_all();
  fake.join();
}

TEST(RemoteFault, ReconnectAndResyncContinuesBitIdentically) {
  const Instance env = make_instance(lorasched::testing::small_scenario(9));
  const PdftspConfig policy = pdftsp_config_for(env);
  shard::ShardedConfig config;
  config.shards = 2;
  config.time_decisions = false;

  shard::ShardedService local(env, shard::make_pdftsp_factory(policy),
                              config);
  submit_all(local, env);
  while (!local.done()) local.step();
  const SimResult local_result = local.finish();

  auto agent = start_agent(env);
  const std::uint16_t port = agent->port();
  auto link = connect_link(env, 2, port);
  shard::ShardedService remote(env, remote_factory({link}, policy), config);
  submit_all(remote, env);

  const Slot restart_at = env.horizon / 2;
  while (!remote.done()) {
    if (remote.current_slot() == restart_at) {
      // Checkpointing refreshes every handle's leader-side state cache —
      // the precondition for a faithful resync.
      (void)remote.checkpoint();
      agent->stop();
      // A revival is only safe once the leader has *noticed* the drop; a
      // link that still looks open would feed the next round into the
      // void and the handle would (correctly) declare the shard dead.
      while (link->open()) std::this_thread::sleep_for(10ms);
      agent = start_agent(env, port);  // fresh process state, same address
    }
    remote.step();
  }
  EXPECT_EQ(remote.dead_shards(), 0);
  EXPECT_EQ(remote.failover_bids(), 0u);
  EXPECT_EQ(agent->sessions_served(), 1u);  // the post-restart session

  const SimResult remote_result = remote.finish();
  expect_same_outcomes(local_result.outcomes, remote_result.outcomes);
  expect_same_metrics(local_result.metrics, remote_result.metrics);
  link->send_shutdown();
  agent->wait();
}

// --- Observability plane (DESIGN.md §12) ------------------------------------

TEST(Messages, MetricsSnapshotRoundTripIsBitExact) {
  MetricsSnapshotMsg msg;
  msg.agent = "agent-7701";
  msg.seq = 42;
  obs::MetricsGroup agent_level;
  agent_level.shard = -1;
  obs::MetricSnapshot counter;
  counter.name = "frames_total";
  counter.help = "frames on the wire";
  counter.kind = obs::MetricKind::kCounter;
  counter.value = 1234.0;
  agent_level.metrics.push_back(counter);
  obs::MetricsGroup shard_level;
  shard_level.shard = 3;
  obs::MetricSnapshot gauge;
  gauge.name = "scratch_bytes";
  gauge.kind = obs::MetricKind::kGauge;
  gauge.value = 0.1 + 0.2;  // not exactly representable; must cross bit-exact
  shard_level.metrics.push_back(gauge);
  obs::Histogram hist(obs::HistogramOptions{.min = 1e-6, .max = 10.0});
  hist.record(1e-3);
  hist.record(0.5);
  hist.record(100.0);  // overflow bucket
  obs::MetricSnapshot histogram;
  histogram.name = "rtt_seconds";
  histogram.kind = obs::MetricKind::kHistogram;
  histogram.histogram = hist.snapshot();
  shard_level.metrics.push_back(histogram);
  msg.groups = {agent_level, shard_level};

  const std::vector<std::uint8_t> bytes = encode(msg);
  const MetricsSnapshotMsg back = decode_metrics_snapshot(bytes);
  EXPECT_EQ(back.agent, msg.agent);
  EXPECT_EQ(back.seq, 42u);
  ASSERT_EQ(back.groups.size(), 2u);
  EXPECT_EQ(back.groups[0].shard, -1);
  ASSERT_EQ(back.groups[0].metrics.size(), 1u);
  EXPECT_EQ(back.groups[0].metrics[0].name, "frames_total");
  EXPECT_EQ(back.groups[0].metrics[0].help, "frames on the wire");
  EXPECT_EQ(back.groups[1].shard, 3);
  ASSERT_EQ(back.groups[1].metrics.size(), 2u);
  EXPECT_EQ(bits(back.groups[1].metrics[0].value), bits(gauge.value));
  const obs::HistogramSnapshot& h = back.groups[1].metrics[1].histogram;
  EXPECT_EQ(h.counts, histogram.histogram.counts);
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(bits(h.sum), bits(histogram.histogram.sum));
  EXPECT_EQ(bits(h.min_seen), bits(histogram.histogram.min_seen));
  EXPECT_EQ(bits(h.max_seen), bits(histogram.histogram.max_seen));
  // Accepted payloads re-encode byte-identically (also pinned by the wire
  // fuzzer over its corpus).
  EXPECT_EQ(encode(back), bytes);
}

TEST(Messages, OfferAndRoundResultsCarryTraceContext) {
  OfferMsg offer;
  offer.shard_id = 1;
  offer.task = gnarly_task();
  offer.trace_id = obs::trace_mix(obs::kTraceSeed, 8);
  offer.parent_span = obs::trace_mix(offer.trace_id, 3);
  const OfferMsg offer_back = decode_offer(encode(offer));
  EXPECT_EQ(offer_back.trace_id, offer.trace_id);
  EXPECT_EQ(offer_back.parent_span, offer.parent_span);

  RoundResultsMsg results;
  results.shard_id = 1;
  results.slot = 4;
  obs::RemoteSpan span;
  span.name = "decide";
  span.task = 17;
  span.trace_id = offer.trace_id;
  span.span_id = obs::trace_mix(offer.parent_span, 18);
  span.parent_span = offer.parent_span;
  span.start_offset_ns = 1500;
  span.duration_ns = 250;
  results.spans.push_back(span);
  const std::vector<std::uint8_t> bytes = encode(results);
  const RoundResultsMsg back = decode_round_results(bytes);
  ASSERT_EQ(back.spans.size(), 1u);
  EXPECT_EQ(back.spans[0].name, "decide");
  EXPECT_EQ(back.spans[0].task, 17);
  EXPECT_EQ(back.spans[0].trace_id, span.trace_id);
  EXPECT_EQ(back.spans[0].span_id, span.span_id);
  EXPECT_EQ(back.spans[0].parent_span, span.parent_span);
  EXPECT_EQ(back.spans[0].start_offset_ns, 1500);
  EXPECT_EQ(back.spans[0].duration_ns, 250);
  EXPECT_EQ(encode(back), bytes);
}

TEST(Transport, CountsFramesPerTypeAndHeartbeatRtt) {
  Listener listener(0);
  Socket server_sock;
  std::thread acceptor([&] { server_sock = accept_one(listener); });
  Socket client_sock = Socket::connect("127.0.0.1", listener.port());
  acceptor.join();

  Mailbox server_mail;
  Mailbox client_mail;
  obs::MetricsRegistry registry;
  Connection::Config instrumented;
  instrumented.metrics = &registry;
  instrumented.ping_interval = 50ms;  // exercises the RTT histogram
  Connection server(
      std::move(server_sock), {},
      [&](Frame&& f) { server_mail.on_frame(std::move(f)); },
      [&](const std::string& r) { server_mail.on_close(r); });
  Connection client(
      std::move(client_sock), instrumented,
      [&](Frame&& f) { client_mail.on_frame(std::move(f)); },
      [&](const std::string& r) { client_mail.on_close(r); });

  ASSERT_TRUE(client.send(MsgType::kHello, encode(HelloMsg{99, 1, 1, 4, 1})));
  ASSERT_TRUE(server_mail.wait_frames(1, 5000ms));
  ASSERT_TRUE(server.send(MsgType::kHelloAck, encode(HelloAckMsg{99})));
  ASSERT_TRUE(client_mail.wait_frames(1, 5000ms));

  EXPECT_EQ(registry.counter("lorasched_net_tx_frames_hello_total").value(),
            1u);
  EXPECT_GT(registry.counter("lorasched_net_tx_bytes_hello_total").value(),
            0u);
  EXPECT_EQ(
      registry.counter("lorasched_net_rx_frames_hello_ack_total").value(),
      1u);
  EXPECT_EQ(registry.counter("lorasched_net_tx_frames_offer_total").value(),
            0u);
  // Pings flow client->server (transport-internal); the pongs coming back
  // feed the RTT histogram.
  const auto deadline = std::chrono::steady_clock::now() + 5000ms;
  while (registry.histogram("lorasched_net_heartbeat_rtt_seconds")
                 .snapshot()
                 .count == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_GT(registry.histogram("lorasched_net_heartbeat_rtt_seconds")
                .snapshot()
                .count,
            0u);
}

std::string http_get(std::uint16_t port, const std::string& path) {
  Socket socket = connect_with_backoff("127.0.0.1", port, 5, 50ms);
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  std::size_t written = 0;
  while (written < request.size()) {
    const ssize_t n = ::send(socket.fd(), request.data() + written,
                             request.size() - written, 0);
    if (n <= 0) break;
    written += static_cast<std::size_t>(n);
  }
  std::string reply;
  char buffer[1024];
  ssize_t n = 0;
  while ((n = ::recv(socket.fd(), buffer, sizeof buffer, 0)) > 0) {
    reply.append(buffer, static_cast<std::size_t>(n));
  }
  return reply;
}

TEST(Transport, HttpServerServesMetricsHealthAndRejectsJunk) {
  obs::MetricsRegistry registry;
  registry.counter("demo_total", "a demo counter").add(5);
  HttpServer http(0);
  http.handle("/metrics", [&registry] {
    std::ostringstream text;
    registry.write_prometheus(text);
    return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                        text.str()};
  });
  http.handle("/healthz",
              [] { return HttpResponse{200, "text/plain", "ok\n"}; });
  http.start();

  const std::string metrics = http_get(http.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE demo_total counter"), std::string::npos);
  EXPECT_NE(metrics.find("demo_total 5"), std::string::npos);

  EXPECT_NE(http_get(http.port(), "/healthz").find("ok"), std::string::npos);
  EXPECT_NE(http_get(http.port(), "/healthz?verbose=1").find("200"),
            std::string::npos);  // query strings are ignored
  EXPECT_NE(http_get(http.port(), "/nope").find("404"), std::string::npos);
  EXPECT_GE(http.requests_served(), 4u);
  http.stop();
}

TEST(RemoteService, ObservabilityOnIsBitIdenticalAndFederates) {
  const Instance env = make_instance(lorasched::testing::small_scenario(13));
  const PdftspConfig policy = pdftsp_config_for(env);
  shard::ShardedConfig config;
  config.shards = 2;
  config.time_decisions = false;

  // Baseline: everything off (the configuration every other parity test
  // runs with).
  shard::ShardedService plain(env, shard::make_pdftsp_factory(policy),
                              config);
  submit_all(plain, env);
  while (!plain.done()) plain.step();

  // Remote run with the whole observability plane on: agent metric pushes,
  // leader-side transport counters, and cross-process tracing.
  HostAgent::Config agent_config;
  agent_config.port = 0;
  agent_config.ping_interval = 100ms;
  agent_config.idle_timeout = 5000ms;
  agent_config.name = "agent-x";
  agent_config.metrics_push_interval = 50ms;
  auto agent = std::make_unique<HostAgent>(env, agent_config);
  agent->start();

  obs::FederatedRegistry federated;
  obs::ClusterTraceCollector tracer;
  obs::MetricsRegistry leader_net;
  LinkConfig link_config;
  link_config.port = agent->port();
  link_config.ping_interval = 100ms;
  link_config.heartbeat_timeout = 5000ms;
  link_config.rpc_timeout = 20000ms;
  link_config.metrics = &leader_net;
  auto link = std::make_shared<AgentLink>(link_config,
                                          hello_for(env, config.shards));
  link->set_metrics_sink([&federated](MetricsSnapshotMsg&& msg) {
    federated.absorb(msg.agent, msg.seq, msg.groups);
  });
  link->connect();

  shard::ShardedConfig traced_config = config;
  traced_config.tracer = &tracer;
  shard::ShardedService remote(env, remote_factory({link}, policy),
                               traced_config);
  submit_all(remote, env);
  while (!remote.done()) remote.step();

  // The tentpole pin: decisions are bit-identical with the full
  // observability plane on (checkpoints serialize every dual, ledger cell,
  // and outcome).
  std::ostringstream plain_bytes;
  io::write_sharded_checkpoint(plain_bytes, plain.checkpoint());
  std::ostringstream traced_bytes;
  io::write_sharded_checkpoint(traced_bytes, remote.checkpoint());
  EXPECT_EQ(plain_bytes.str(), traced_bytes.str());

  // The merged trace holds leader bid spans and the agent spans that
  // parent to them.
  EXPECT_GT(tracer.events(), 0u);
  bool saw_leader = false;
  bool saw_agent = false;
  bool saw_decide = false;
  for (const auto& summary : tracer.summaries()) {
    saw_leader = saw_leader || summary.name == "leader_round";
    saw_agent = saw_agent || summary.name == "agent_round";
    saw_decide = saw_decide || summary.name == "decide";
  }
  EXPECT_TRUE(saw_leader);
  EXPECT_TRUE(saw_agent);
  EXPECT_TRUE(saw_decide);

  // Federation: wait for a push that carries the agent's per-shard DP
  // cache counters, then check the exposition labels them.
  const auto deadline = std::chrono::steady_clock::now() + 5000ms;
  const auto exposition = [&federated] {
    std::ostringstream text;
    federated.write_prometheus(text);
    return text.str();
  };
  while (exposition().find("lorasched_dp_price_cache_hits_total{agent="
                           "\"agent-x\",shard=\"0\"}") == std::string::npos &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(20ms);
  }
  const std::string text = exposition();
  EXPECT_NE(text.find("lorasched_dp_price_cache_hits_total{agent=\"agent-x\","
                      "shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("lorasched_dp_price_cache_hits_total{agent=\"agent-x\","
                      "shard=\"1\"}"),
            std::string::npos);
  // Agent-level transport counters federate without a shard label.
  EXPECT_GT(federated.value("agent-x", -1,
                            "lorasched_net_tx_frames_round_results_total"),
            0.0);
  // Leader-side transport counters live in the local link registry.
  EXPECT_GT(
      leader_net.counter("lorasched_net_tx_frames_offer_total").value(), 0u);
  EXPECT_GT(
      leader_net.counter("lorasched_net_rx_frames_round_results_total")
          .value(),
      0u);
  // Round-phase histograms populate on the leader's service registry.
  EXPECT_GT(remote.registry()
                .histogram("lorasched_round_decide_seconds")
                .snapshot()
                .count,
            0u);
  EXPECT_GT(remote.registry()
                .histogram("lorasched_round_publish_seconds")
                .snapshot()
                .count,
            0u);

  (void)plain.finish();
  (void)remote.finish();
  link->send_shutdown();
  agent->wait();
}

// --- Concurrency regressions (DESIGN.md §13) --------------------------------

TEST(Transport, StalledPeerCannotWedgeTheFailureDetector) {
  // Regression: the maintenance thread used to enqueue pings with the
  // blocking send path, so a peer that stopped reading (full outbox)
  // parked the very thread that runs the idle-timeout check — two
  // mutually-stalled peers could deadlock forever. Pings now shed via
  // try_send() and the detector keeps ticking.
  Listener listener(0);
  Socket server_sock;
  std::thread acceptor([&] { server_sock = accept_one(listener); });
  Socket client_sock = Socket::connect("127.0.0.1", listener.port());
  acceptor.join();

  // Tiny kernel buffers so a handful of frames genuinely stalls the
  // writer against the never-reading peer.
  const int small = 4 * 1024;
  setsockopt(server_sock.fd(), SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  setsockopt(client_sock.fd(), SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));

  Mailbox server_mail;
  Connection::Config watchful;
  watchful.outbox_capacity = 2;
  watchful.ping_interval = 50ms;
  watchful.idle_timeout = 300ms;
  Connection server(
      std::move(server_sock), watchful,
      [&](Frame&& f) { server_mail.on_frame(std::move(f)); },
      [&](const std::string& r) { server_mail.on_close(r); });
  // The client never reads and never pings: its socket exists, nothing
  // else. (client_sock stays alive in this scope so the peer is stalled,
  // not gone.)
  const std::vector<std::uint8_t> chunk(64 * 1024, 0xAB);
  ASSERT_TRUE(server.send(MsgType::kOffer, chunk));   // writer blocks in send()
  ASSERT_TRUE(server.send(MsgType::kOffer, chunk));   // fills the outbox
  ASSERT_TRUE(server.send(MsgType::kOffer, chunk));

  // The silent peer must still trip the idle timeout — the maintenance
  // thread sheds its pings instead of blocking behind the full outbox.
  ASSERT_TRUE(server_mail.wait_close(5000ms));
  EXPECT_NE(server_mail.close_reason.find("idle timeout"), std::string::npos);
  EXPECT_GT(server.sends_shed_full(), 0u);
  EXPECT_FALSE(server.open());
}

TEST(RemoteFault, HealthScrapesRaceLinkFailureWithoutDeadlock) {
  // Regression for the AgentLink lock split: health() (scrape thread,
  // conn_mutex_ then mutex_, one at a time) must never deadlock or race
  // against the close handler and mailbox waiters (mutex_). Under TSan
  // this also proves the two-mutex discipline.
  const Instance env = make_instance(lorasched::testing::small_scenario(7));
  auto agent = start_agent(env);
  auto link = connect_link(env, 1, agent->port(), 500ms);
  ASSERT_TRUE(link->open());
  EXPECT_TRUE(link->health().open);

  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const AgentLink::Health h = link->health();
      (void)h;
    }
  });

  // Kill the agent while the scraper hammers health().
  agent->stop();
  const auto deadline = std::chrono::steady_clock::now() + 5000ms;
  while (link->open() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_FALSE(link->open());

  // The leader path surfaces the failure via last_error_, not by poking
  // the transport under mutex_ — an immediate throw, not an rpc_timeout
  // wait.
  EXPECT_THROW((void)link->wait(0, MsgType::kRoundResults),
               shard::ShardUnavailable);
  const AgentLink::Health h = link->health();
  EXPECT_FALSE(h.open);
  EXPECT_FALSE(h.last_error.empty());

  done.store(true);
  scraper.join();
}

TEST(RemoteFault, DuplicateHelloFailsTheSessionNotTheAgent) {
  // Regression: a second Hello inside one session used to rebuild the
  // PriceBoard while that session's ShardRunners held references into it.
  // The agent must fail the offending session and keep serving new ones.
  const Instance env = make_instance(lorasched::testing::small_scenario(3));
  auto agent = start_agent(env);

  Mailbox mail;
  Socket sock = Socket::connect("127.0.0.1", agent->port());
  Connection leader(
      std::move(sock), {}, [&](Frame&& f) { mail.on_frame(std::move(f)); },
      [&](const std::string& r) { mail.on_close(r); });
  const HelloMsg hello = hello_for(env, 1);
  ASSERT_TRUE(leader.send(MsgType::kHello, encode(hello)));
  ASSERT_TRUE(mail.wait_frames(1, 5000ms));
  EXPECT_EQ(mail.frames[0].type, MsgType::kHelloAck);

  ASSERT_TRUE(leader.send(MsgType::kHello, encode(hello)));
  ASSERT_TRUE(mail.wait_close(5000ms));
  EXPECT_TRUE(agent->running());

  // A fresh session handshakes normally — the agent routed around the
  // poisoned one.
  auto link = connect_link(env, 1, agent->port());
  EXPECT_TRUE(link->open());
  EXPECT_GE(agent->sessions_served(), 2u);
  link->send_shutdown();
  agent->wait();
}

}  // namespace
}  // namespace lorasched::net
