// Tests for multi-model zones: routing, economic isolation, aggregate
// accounting, and capacity safety per zone.
#include "lorasched/core/multizone.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_helpers.h"

namespace lorasched {
namespace {

using testing::make_task;

std::vector<ZoneConfig> two_zones() {
  ZoneConfig gpt2;
  gpt2.model_name = "gpt2";
  gpt2.base_model_gb = 4.0;
  gpt2.nodes = {GpuProfile{"mini", 1000.0, 20.0, 0.3, 1.2},
                GpuProfile{"mini", 1000.0, 20.0, 0.3, 1.2}};
  ZoneConfig llama;
  llama.model_name = "llama-7b";
  llama.base_model_gb = 14.0;
  llama.nodes = {GpuProfile{"big", 2000.0, 40.0, 0.4, 1.5}};
  return {gpt2, llama};
}

Task zone_task(TaskId id, int model, Money bid = 10.0) {
  Task task = make_task(id, 0, 12, 900.0, 2.0, 0.5, bid);
  task.model = model;
  return task;
}

struct MultiZoneFixture : ::testing::Test {
  MultiZoneAuction auction{two_zones(), testing::flat_energy(), 20};
  std::vector<VendorQuote> no_quotes;
};

TEST_F(MultiZoneFixture, ZoneSetupMatchesConfig) {
  EXPECT_EQ(auction.zone_count(), 2);
  EXPECT_EQ(auction.zone_name(0), "gpt2");
  EXPECT_EQ(auction.zone_name(1), "llama-7b");
  EXPECT_EQ(auction.zone_cluster(0).node_count(), 2);
  EXPECT_EQ(auction.zone_cluster(1).node_count(), 1);
  EXPECT_DOUBLE_EQ(auction.zone_cluster(1).adapter_mem_capacity(0), 26.0);
}

TEST_F(MultiZoneFixture, RoutesByModel) {
  const Decision d0 = auction.submit(zone_task(0, 0), no_quotes);
  ASSERT_TRUE(d0.admit);
  const Decision d1 = auction.submit(zone_task(1, 1), no_quotes);
  ASSERT_TRUE(d1.admit);
  // Bookings land in the right zone's ledger.
  EXPECT_GT(auction.zone_ledger(0).compute_utilization(), 0.0);
  EXPECT_GT(auction.zone_ledger(1).compute_utilization(), 0.0);
  EXPECT_EQ(auction.zone_metrics(0).admitted, 1);
  EXPECT_EQ(auction.zone_metrics(1).admitted, 1);
}

TEST_F(MultiZoneFixture, RejectsUnknownModel) {
  EXPECT_THROW((void)auction.submit(zone_task(0, 7), no_quotes),
               std::out_of_range);
  EXPECT_THROW((void)auction.submit(zone_task(0, -1), no_quotes),
               std::out_of_range);
}

TEST_F(MultiZoneFixture, ZonesAreEconomicallyIsolated) {
  // Load zone 0 heavily; zone 1's dual prices must stay at zero.
  for (TaskId id = 0; id < 12; ++id) {
    (void)auction.submit(zone_task(id, 0), no_quotes);
  }
  const DualState& other = auction.zone_policy(1).duals();
  for (Slot t = 0; t < 20; ++t) {
    EXPECT_EQ(other.lambda(0, t), 0.0);
    EXPECT_EQ(other.phi(0, t), 0.0);
  }
  // And a newcomer in zone 1 pays only the cost pass-through.
  const Decision d = auction.submit(zone_task(100, 1), no_quotes);
  ASSERT_TRUE(d.admit);
  EXPECT_DOUBLE_EQ(d.payment, d.schedule.energy_cost);
}

TEST_F(MultiZoneFixture, TotalMetricsSumZones) {
  (void)auction.submit(zone_task(0, 0), no_quotes);
  (void)auction.submit(zone_task(1, 1), no_quotes);
  (void)auction.submit(zone_task(2, 0, 0.0001), no_quotes);  // rejected
  const Metrics total = auction.total_metrics();
  EXPECT_EQ(total.admitted,
            auction.zone_metrics(0).admitted + auction.zone_metrics(1).admitted);
  EXPECT_EQ(total.rejected, 1);
  EXPECT_NEAR(total.social_welfare,
              auction.zone_metrics(0).social_welfare +
                  auction.zone_metrics(1).social_welfare,
              1e-9);
}

TEST_F(MultiZoneFixture, ZoneCapacityEnforced) {
  // Flood one zone far past its capacity: no throw, bounded admissions.
  int admitted = 0;
  for (TaskId id = 0; id < 80; ++id) {
    Task task = zone_task(id, 0);
    task.deadline = 3;  // 4-slot window, 2 slots each, 2 nodes
    if (auction.submit(task, no_quotes).admit) ++admitted;
  }
  EXPECT_LE(admitted, 8);  // 2 nodes x 4 slots / 2 slots-per-task, shared x2
  EXPECT_GE(admitted, 2);
}

TEST(MultiZone, RejectsEmptyZoneList) {
  EXPECT_THROW(MultiZoneAuction({}, testing::flat_energy(), 10),
               std::invalid_argument);
}

TEST(MultiZone, VendorQuotesFlowThrough) {
  MultiZoneAuction auction(two_zones(), testing::flat_energy(), 20);
  Task task = zone_task(0, 0);
  task.needs_prep = true;
  const std::vector<VendorQuote> quotes{{0.5, 2}, {1.5, 1}};
  const Decision d = auction.submit(task, quotes);
  ASSERT_TRUE(d.admit);
  EXPECT_NE(d.schedule.vendor, kNoVendor);
  EXPECT_GE(d.payment, d.schedule.vendor_price);
}

}  // namespace
}  // namespace lorasched
