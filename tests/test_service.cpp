// AdmissionService correctness: the streaming service must reproduce the
// batch simulator bit for bit (decisions, payments, welfare), including
// after a kill + checkpoint/restore mid-horizon, while surviving
// multi-producer ingestion and enforcing backpressure.
#include "lorasched/service/admission_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "lorasched/core/online_params.h"
#include "lorasched/core/pdftsp.h"
#include "lorasched/io/serialize.h"
#include "lorasched/obs/trace.h"
#include "lorasched/sim/engine.h"
#include "test_helpers.h"

namespace lorasched::service {
namespace {

/// Exact equality of everything a decision commits to (decide_seconds is
/// wall-clock noise and deliberately excluded).
void expect_same_outcomes(const std::vector<TaskOutcome>& a,
                          const std::vector<TaskOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].task, b[i].task);
    EXPECT_EQ(a[i].admitted, b[i].admitted);
    EXPECT_EQ(a[i].bid, b[i].bid);
    EXPECT_EQ(a[i].payment, b[i].payment);
    EXPECT_EQ(a[i].vendor, b[i].vendor);
    EXPECT_EQ(a[i].vendor_cost, b[i].vendor_cost);
    EXPECT_EQ(a[i].energy_cost, b[i].energy_cost);
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].completion, b[i].completion);
    EXPECT_EQ(a[i].slots_used, b[i].slots_used);
    EXPECT_EQ(a[i].preemptions, b[i].preemptions);
  }
}

void expect_same_metrics(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.social_welfare, b.social_welfare);
  EXPECT_EQ(a.provider_utility, b.provider_utility);
  EXPECT_EQ(a.user_utility, b.user_utility);
  EXPECT_EQ(a.total_payments, b.total_payments);
  EXPECT_EQ(a.total_vendor_cost, b.total_vendor_cost);
  EXPECT_EQ(a.total_energy_cost, b.total_energy_cost);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.utilization, b.utilization);
}

/// Submits every instance task from `threads` producers, then steps the
/// service through its whole horizon.
void serve_instance(AdmissionService& service, const Instance& instance,
                    int threads = 4) {
  std::vector<std::thread> producers;
  for (int p = 0; p < threads; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = static_cast<std::size_t>(p);
           i < instance.tasks.size(); i += static_cast<std::size_t>(threads)) {
        ASSERT_EQ(service.submit(instance.tasks[i]), SubmitResult::kAccepted);
      }
    });
  }
  for (auto& t : producers) t.join();
  while (!service.done()) service.step();
}

TEST(AdmissionService, MatchesBatchSimulatorExactly) {
  const Instance instance = make_instance(testing::small_scenario());
  const PdftspConfig config = pdftsp_config_for(instance);

  Pdftsp sim_policy(config, instance.cluster, instance.energy,
                    instance.horizon);
  const SimResult expected = run_simulation(instance, sim_policy);

  Pdftsp served_policy(config, instance.cluster, instance.energy,
                       instance.horizon);
  AdmissionService service(instance, served_policy);
  serve_instance(service, instance);
  const SimResult actual = service.finish();

  expect_same_outcomes(expected.outcomes, actual.outcomes);
  expect_same_metrics(expected.metrics, actual.metrics);
  ASSERT_EQ(expected.schedules.size(), actual.schedules.size());
  for (std::size_t i = 0; i < expected.schedules.size(); ++i) {
    EXPECT_EQ(expected.schedules[i].run, actual.schedules[i].run);
  }
}

// Regression for the lorasched_serve --slot-ms 0 deadlock: offline replay
// must be able to absorb a bid stream longer than the queue capacity
// under block backpressure *before* the first decision. pump() frees
// queue space without advancing the slot, and the result must still match
// the batch simulator bit for bit.
TEST(AdmissionService, PumpIngestsBeyondQueueCapacityWithoutDeadlock) {
  const Instance instance = make_instance(testing::small_scenario());
  const PdftspConfig config = pdftsp_config_for(instance);

  Pdftsp sim_policy(config, instance.cluster, instance.energy,
                    instance.horizon);
  const SimResult expected = run_simulation(instance, sim_policy);

  Pdftsp served_policy(config, instance.cluster, instance.energy,
                       instance.horizon);
  ServiceConfig service_config;
  service_config.queue_capacity = 2;  // far below the bid count
  service_config.backpressure = BackpressureMode::kBlock;
  AdmissionService service(instance, served_policy, service_config);
  ASSERT_GT(instance.tasks.size(), service_config.queue_capacity);

  std::thread feeder([&] {
    for (const Task& task : instance.tasks) {
      ASSERT_EQ(service.submit(task), SubmitResult::kAccepted);
    }
    service.close();
  });
  // The serve binary's offline-replay loop: pump until the feeder is done
  // (queue closed) and the queue is empty, then decide every slot.
  while (!service.queue().closed() || service.queue().depth() != 0) {
    service.queue().wait_available();
    service.pump();
  }
  feeder.join();
  while (!service.done()) service.step();
  const SimResult actual = service.finish();

  expect_same_outcomes(expected.outcomes, actual.outcomes);
  expect_same_metrics(expected.metrics, actual.metrics);
}

TEST(AdmissionService, CheckpointRestoreResumesBitIdentically) {
  const Instance instance = make_instance(testing::small_scenario(7));
  const PdftspConfig config = pdftsp_config_for(instance);

  Pdftsp sim_policy(config, instance.cluster, instance.energy,
                    instance.horizon);
  const SimResult expected = run_simulation(instance, sim_policy);

  // First service life: ingest everything, serve half the horizon, then
  // checkpoint through the io round-trip and "crash".
  std::stringstream persisted;
  {
    Pdftsp policy(config, instance.cluster, instance.energy,
                  instance.horizon);
    AdmissionService service(instance, policy);
    for (const Task& task : instance.tasks) {
      ASSERT_EQ(service.submit(task), SubmitResult::kAccepted);
    }
    for (Slot t = 0; t < instance.horizon / 2; ++t) service.step();
    io::write_checkpoint(persisted, service.checkpoint());
  }

  // Second life: a fresh service + fresh policy restored from the stream.
  Pdftsp revived_policy(config, instance.cluster, instance.energy,
                        instance.horizon);
  AdmissionService revived(instance, revived_policy);
  revived.restore(io::read_checkpoint(persisted));
  EXPECT_EQ(revived.current_slot(), instance.horizon / 2);
  while (!revived.done()) revived.step();
  const SimResult actual = revived.finish();

  expect_same_outcomes(expected.outcomes, actual.outcomes);
  expect_same_metrics(expected.metrics, actual.metrics);
}

TEST(AdmissionService, AdaptivePolicyCheckpointsToo) {
  const Instance instance = make_instance(testing::small_scenario(11));
  const OnlineParamEstimator::Config est{};

  AdaptivePdftsp sim_policy(est, instance.cluster, instance.energy,
                            instance.horizon);
  const SimResult expected = run_simulation(instance, sim_policy);

  std::stringstream persisted;
  {
    AdaptivePdftsp policy(est, instance.cluster, instance.energy,
                          instance.horizon);
    AdmissionService service(instance, policy);
    for (const Task& task : instance.tasks) {
      ASSERT_EQ(service.submit(task), SubmitResult::kAccepted);
    }
    for (Slot t = 0; t < instance.horizon / 3; ++t) service.step();
    io::write_checkpoint(persisted, service.checkpoint());
  }

  AdaptivePdftsp revived_policy(est, instance.cluster, instance.energy,
                                instance.horizon);
  AdmissionService revived(instance, revived_policy);
  revived.restore(io::read_checkpoint(persisted));
  while (!revived.done()) revived.step();
  const SimResult actual = revived.finish();

  expect_same_outcomes(expected.outcomes, actual.outcomes);
  expect_same_metrics(expected.metrics, actual.metrics);
}

TEST(AdmissionService, RestoreRequiresFreshService) {
  const Instance instance = make_instance(testing::small_scenario());
  const PdftspConfig config = pdftsp_config_for(instance);
  Pdftsp policy(config, instance.cluster, instance.energy, instance.horizon);
  AdmissionService service(instance, policy);
  const Checkpoint cp = service.checkpoint();
  service.step();
  EXPECT_THROW(service.restore(cp), std::logic_error);
}

class CountingSubscriber final : public DecisionSubscriber {
 public:
  void on_admitted(const TaskOutcome&, const Schedule&) override {
    ++admitted;
  }
  void on_rejected(const TaskOutcome&) override { ++rejected; }
  void on_payment(TaskId, Money payment) override {
    ++payments;
    total_paid += payment;
  }
  void on_slot_end(const SlotReport& report) override {
    ++slots;
    batched += report.batch;
  }

  int admitted = 0;
  int rejected = 0;
  int payments = 0;
  Money total_paid = 0.0;
  int slots = 0;
  std::size_t batched = 0;
};

TEST(AdmissionService, SubscribersSeeEveryDecisionAndPayment) {
  const Instance instance = make_instance(testing::small_scenario(3));
  const PdftspConfig config = pdftsp_config_for(instance);
  Pdftsp policy(config, instance.cluster, instance.energy, instance.horizon);
  AdmissionService service(instance, policy);
  CountingSubscriber subscriber;
  service.add_subscriber(&subscriber);

  serve_instance(service, instance, 2);
  const SimResult result = service.finish();

  EXPECT_EQ(subscriber.admitted, result.metrics.admitted);
  EXPECT_EQ(subscriber.rejected, result.metrics.rejected);
  EXPECT_EQ(subscriber.payments, result.metrics.admitted);
  EXPECT_EQ(subscriber.total_paid, result.metrics.total_payments);
  EXPECT_EQ(subscriber.slots, instance.horizon);
  EXPECT_EQ(subscriber.batched, instance.tasks.size());
}

TEST(AdmissionService, RejectBackpressureShedsWhenFull) {
  const Instance instance = make_instance(testing::small_scenario());
  const PdftspConfig config = pdftsp_config_for(instance);
  Pdftsp policy(config, instance.cluster, instance.energy, instance.horizon);
  ServiceConfig service_config;
  service_config.queue_capacity = 2;
  service_config.backpressure = BackpressureMode::kReject;
  AdmissionService service(instance, policy, service_config);

  ASSERT_GE(instance.tasks.size(), 3u);
  EXPECT_EQ(service.submit(instance.tasks[0]), SubmitResult::kAccepted);
  EXPECT_EQ(service.submit(instance.tasks[1]), SubmitResult::kAccepted);
  EXPECT_EQ(service.submit(instance.tasks[2]), SubmitResult::kRejectedFull);
  EXPECT_EQ(service.queue().rejected_full_total(), 1u);
  // Draining a slot frees the capacity again.
  service.step();
  EXPECT_EQ(service.submit(instance.tasks[2]), SubmitResult::kAccepted);
}

TEST(AdmissionService, LateBidsRejectedInRejectMode) {
  const Instance instance = make_instance(testing::small_scenario());
  const PdftspConfig config = pdftsp_config_for(instance);
  Pdftsp policy(config, instance.cluster, instance.energy, instance.horizon);
  AdmissionService service(instance, policy);  // late_bids = kReject
  CountingSubscriber subscriber;
  service.add_subscriber(&subscriber);

  service.step();  // now at slot 1; anything with arrival 0 is late
  Task late = testing::make_task(9001, 0, 10, 400.0);
  ASSERT_EQ(service.submit(late), SubmitResult::kAccepted);
  service.step();

  EXPECT_EQ(service.metrics().rejected_late, 1u);
  EXPECT_EQ(subscriber.rejected, 1);
  EXPECT_EQ(subscriber.admitted, 0);
}

TEST(AdmissionService, LateBidsClampedToCurrentSlotInClampMode) {
  const Instance instance = make_instance(testing::small_scenario());
  const PdftspConfig config = pdftsp_config_for(instance);
  Pdftsp policy(config, instance.cluster, instance.energy, instance.horizon);
  ServiceConfig service_config;
  service_config.late_bids = LateBidMode::kClamp;
  AdmissionService service(instance, policy, service_config);

  service.step();
  service.step();  // now at slot 2
  Task late = testing::make_task(9002, 0, instance.horizon - 1, 400.0);
  ASSERT_EQ(service.submit(late), SubmitResult::kAccepted);
  service.step();

  EXPECT_EQ(service.metrics().rejected_late, 0u);
  EXPECT_EQ(service.metrics().bids_decided, 1u);
  while (!service.done()) service.step();
  const SimResult result = service.finish();
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_EQ(result.outcomes[0].arrival, 2);  // re-stamped to the drain slot
}

TEST(AdmissionService, ConcurrentProducersWithRunningSlotLoop) {
  ScenarioConfig scenario = testing::small_scenario(17);
  scenario.horizon = 96;
  scenario.arrival_rate = 4.0;
  const Instance instance = make_instance(scenario);
  const PdftspConfig config = pdftsp_config_for(instance);
  Pdftsp policy(config, instance.cluster, instance.energy, instance.horizon);
  ServiceConfig service_config;
  service_config.late_bids = LateBidMode::kClamp;  // producers may lag slots
  AdmissionService service(instance, policy, service_config);

  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = static_cast<std::size_t>(p);
           i < instance.tasks.size();
           i += static_cast<std::size_t>(kProducers)) {
        ASSERT_EQ(service.submit(instance.tasks[i]), SubmitResult::kAccepted);
      }
    });
  }
  // Interleave slot processing with live ingestion, holding the final slot
  // until every producer finished so nothing is left undrained.
  for (Slot t = 0; t < instance.horizon - 1; ++t) {
    service.step();
    std::this_thread::yield();
  }
  for (auto& t : producers) t.join();
  service.close();
  service.step();  // final slot drains the stragglers

  const auto ops = service.metrics();
  const SimResult result = service.finish();  // ledger cross-check passes
  EXPECT_EQ(ops.bids_ingested, instance.tasks.size());
  EXPECT_EQ(ops.bids_decided + ops.rejected_late, instance.tasks.size());
  EXPECT_EQ(result.outcomes.size(), instance.tasks.size());
  std::set<TaskId> seen;
  for (const TaskOutcome& o : result.outcomes) {
    EXPECT_TRUE(seen.insert(o.task).second) << "duplicate decision";
  }
  EXPECT_GT(ops.slots_processed, 0u);
}

// Epoch-batched admission (PdftspConfig::admission_batch) must be
// trace-equal to one-at-a-time processing: same decisions, payments,
// schedules, and byte-identical DecisionTraceRecord streams — inline
// speculation and the pooled (batch_workers) variant alike.
TEST(AdmissionService, EpochBatchedAdmissionBitIdenticalToSequential) {
  const Instance instance = make_instance(testing::small_scenario(41));
  const PdftspConfig base = pdftsp_config_for(instance);
  auto replay = [&](int batch, int workers) {
    PdftspConfig config = base;
    config.admission_batch = batch;
    config.batch_workers = workers;
    Pdftsp policy(config, instance.cluster, instance.energy,
                  instance.horizon);
    std::ostringstream jsonl;
    obs::DecisionTracer tracer(&jsonl);
    policy.set_trace_sink(&tracer);
    AdmissionService service(instance, policy);
    serve_instance(service, instance, /*threads=*/1);
    const SimResult result = service.finish();
    tracer.flush();
    return std::pair<SimResult, std::string>(result, jsonl.str());
  };

  const auto [seq, seq_trace] = replay(0, 0);
  ASSERT_FALSE(seq_trace.empty());
  struct BatchArm {
    int batch;
    int workers;
  };
  for (const BatchArm arm : {BatchArm{4, 0}, BatchArm{32, 0}, BatchArm{8, 3}}) {
    SCOPED_TRACE(arm.batch);
    SCOPED_TRACE(arm.workers);
    const auto [batched, batched_trace] = replay(arm.batch, arm.workers);
    expect_same_outcomes(seq.outcomes, batched.outcomes);
    expect_same_metrics(seq.metrics, batched.metrics);
    ASSERT_EQ(seq.schedules.size(), batched.schedules.size());
    for (std::size_t i = 0; i < seq.schedules.size(); ++i) {
      EXPECT_EQ(seq.schedules[i].run, batched.schedules[i].run);
    }
    EXPECT_EQ(seq_trace, batched_trace);
  }
}

TEST(AdmissionService, FinishRequiresCompletedHorizon) {
  const Instance instance = make_instance(testing::small_scenario());
  const PdftspConfig config = pdftsp_config_for(instance);
  Pdftsp policy(config, instance.cluster, instance.energy, instance.horizon);
  AdmissionService service(instance, policy);
  EXPECT_THROW((void)service.finish(), std::logic_error);
}

TEST(AdmissionService, RunDrivesToHorizon) {
  const Instance instance = make_instance(testing::small_scenario(5));
  const PdftspConfig config = pdftsp_config_for(instance);
  Pdftsp policy(config, instance.cluster, instance.energy, instance.horizon);
  AdmissionService service(instance, policy);
  for (const Task& task : instance.tasks) {
    ASSERT_EQ(service.submit(task), SubmitResult::kAccepted);
  }
  service.close();
  service.run(std::chrono::nanoseconds{0});
  EXPECT_TRUE(service.done());
  const SimResult result = service.finish();
  EXPECT_EQ(result.outcomes.size(), instance.tasks.size());
}

}  // namespace
}  // namespace lorasched::service
