#include "lorasched/solver/bnb.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace lorasched::solver {
namespace {

/// Exhaustive 0/1 reference solver for small MILPs.
double brute_force(const MilpProblem& problem) {
  const int n = problem.lp.num_vars();
  double best = 0.0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    bool feasible = true;
    for (const auto& row : problem.lp.rows) {
      double lhs = 0.0;
      for (const auto& [var, coeff] : row.coeffs) {
        if (mask & (1 << var)) lhs += coeff;
      }
      if (lhs > row.rhs + 1e-9) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;
    double value = 0.0;
    for (int j = 0; j < n; ++j) {
      if (mask & (1 << j)) value += problem.lp.objective[static_cast<std::size_t>(j)];
    }
    best = std::max(best, value);
  }
  return best;
}

MilpProblem all_binary(LpProblem lp) {
  MilpProblem milp;
  milp.lp = std::move(lp);
  for (int j = 0; j < milp.lp.num_vars(); ++j) milp.binary_vars.push_back(j);
  return milp;
}

TEST(Bnb, SolvesClassicKnapsack) {
  // values {10, 6, 4}, weights {5, 4, 3}, capacity 7 -> {10} + {4}? 5+3=8>7.
  // best: {0}=10 or {1,2}=10 weight 7. Optimal = 10.
  LpProblem lp;
  lp.objective = {10.0, 6.0, 4.0};
  lp.add_row({{0, 5.0}, {1, 4.0}, {2, 3.0}}, 7.0);
  const MilpProblem milp = all_binary(std::move(lp));
  const MilpSolution sol = solve_milp(milp);
  ASSERT_TRUE(sol.found_incumbent);
  EXPECT_TRUE(sol.proved_optimal);
  EXPECT_NEAR(sol.objective, 10.0, 1e-9);
  EXPECT_NEAR(sol.objective, brute_force(milp), 1e-9);
}

TEST(Bnb, RootBoundUpperBoundsOptimum) {
  LpProblem lp;
  lp.objective = {10.0, 6.0, 4.0};
  lp.add_row({{0, 5.0}, {1, 4.0}, {2, 3.0}}, 7.0);
  const MilpSolution sol = solve_milp(all_binary(std::move(lp)));
  EXPECT_GE(sol.root_bound + 1e-9, sol.objective);
}

TEST(Bnb, SetPackingAgainstBruteForce) {
  // 6 items, 3 conflicting groups.
  LpProblem lp;
  lp.objective = {5.0, 4.0, 3.0, 6.0, 2.0, 4.5};
  lp.add_row({{0, 1.0}, {1, 1.0}, {2, 1.0}}, 1.0);
  lp.add_row({{2, 1.0}, {3, 1.0}}, 1.0);
  lp.add_row({{1, 1.0}, {4, 1.0}, {5, 1.0}}, 2.0);
  const MilpProblem milp = all_binary(std::move(lp));
  const MilpSolution sol = solve_milp(milp);
  ASSERT_TRUE(sol.found_incumbent);
  EXPECT_NEAR(sol.objective, brute_force(milp), 1e-9);
}

TEST(Bnb, InfeasibleFixingsPruned) {
  // Both variables exceed the budget individually -> only empty solution.
  LpProblem lp;
  lp.objective = {3.0, 2.0};
  lp.add_row({{0, 10.0}}, 4.0);
  lp.add_row({{1, 10.0}}, 4.0);
  const MilpSolution sol = solve_milp(all_binary(std::move(lp)));
  ASSERT_TRUE(sol.found_incumbent);
  EXPECT_NEAR(sol.objective, 0.0, 1e-9);
}

TEST(Bnb, IntegralRelaxationNeedsNoBranching) {
  // Totally unimodular (assignment-like) constraints: LP is integral.
  LpProblem lp;
  lp.objective = {2.0, 3.0};
  lp.add_row({{0, 1.0}}, 1.0);
  lp.add_row({{1, 1.0}}, 1.0);
  const MilpSolution sol = solve_milp(all_binary(std::move(lp)));
  ASSERT_TRUE(sol.found_incumbent);
  EXPECT_NEAR(sol.objective, 5.0, 1e-9);
  EXPECT_LE(sol.nodes_explored, 3);
}

TEST(Bnb, MixedContinuousAndBinary) {
  // max 4b + y s.t. b binary, y <= 2.5, b + y <= 3 -> b=1, y=2 -> 6.
  LpProblem lp;
  lp.objective = {4.0, 1.0};
  lp.add_row({{1, 1.0}}, 2.5);
  lp.add_row({{0, 1.0}, {1, 1.0}}, 3.0);
  MilpProblem milp;
  milp.lp = std::move(lp);
  milp.binary_vars = {0};
  const MilpSolution sol = solve_milp(milp);
  ASSERT_TRUE(sol.found_incumbent);
  EXPECT_NEAR(sol.objective, 6.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 1.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 2.0, 1e-9);
}

TEST(Bnb, NodeCapTruncatesButReportsIncumbent) {
  // A 16-item knapsack with a tiny node budget: must not claim optimality.
  LpProblem lp;
  for (int j = 0; j < 16; ++j) {
    lp.objective.push_back(1.0 + 0.1 * j);
  }
  LpProblem::Row row;
  for (int j = 0; j < 16; ++j) row.coeffs.emplace_back(j, 1.0 + 0.07 * j);
  row.rhs = 6.0;
  lp.rows.push_back(row);
  BnbOptions options;
  options.max_nodes = 5;
  const MilpSolution sol = solve_milp(all_binary(std::move(lp)), options);
  EXPECT_FALSE(sol.proved_optimal);
  EXPECT_LE(sol.nodes_explored, 5);
}

TEST(Bnb, RandomizedPackingMatchesBruteForce) {
  std::uint64_t state = 777;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>((state >> 33) & 0xffff) / 65535.0;
  };
  for (int trial = 0; trial < 12; ++trial) {
    LpProblem lp;
    const int n = 8;
    for (int j = 0; j < n; ++j) lp.objective.push_back(1.0 + 5.0 * next());
    for (int i = 0; i < 4; ++i) {
      LpProblem::Row row;
      for (int j = 0; j < n; ++j) {
        if (next() < 0.5) row.coeffs.emplace_back(j, 0.5 + next());
      }
      row.rhs = 1.0 + 2.0 * next();
      if (!row.coeffs.empty()) lp.rows.push_back(row);
    }
    const MilpProblem milp = all_binary(std::move(lp));
    const MilpSolution sol = solve_milp(milp);
    ASSERT_TRUE(sol.found_incumbent) << "trial " << trial;
    EXPECT_NEAR(sol.objective, brute_force(milp), 1e-6) << "trial " << trial;
  }
}

TEST(Bnb, RejectsBadBinaryIndex) {
  LpProblem lp;
  lp.objective = {1.0};
  MilpProblem milp;
  milp.lp = std::move(lp);
  milp.binary_vars = {5};
  EXPECT_THROW(solve_milp(milp), std::invalid_argument);
}

TEST(Bnb, SolutionVectorMatchesObjective) {
  LpProblem lp;
  lp.objective = {7.0, 3.0, 9.0};
  lp.add_row({{0, 1.0}, {2, 1.0}}, 1.0);
  lp.add_row({{1, 1.0}, {2, 1.0}}, 1.0);
  const MilpProblem milp = all_binary(std::move(lp));
  const MilpSolution sol = solve_milp(milp);
  ASSERT_TRUE(sol.found_incumbent);
  double recomputed = 0.0;
  for (std::size_t j = 0; j < sol.x.size(); ++j) {
    recomputed += sol.x[j] * milp.lp.objective[j];
  }
  EXPECT_NEAR(recomputed, sol.objective, 1e-9);
}

}  // namespace
}  // namespace lorasched::solver
