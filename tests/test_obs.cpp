// Observability primitives: the metrics registry (counters, gauges,
// log-bucketed histograms, Prometheus exposition), the minimal JSON
// value type, RAII profiling spans with self-time attribution, and the
// ServiceMetrics facade built on top of them. Includes concurrent
// hammering of every recording path so the TSan job certifies the
// lock-free claims.
#include "lorasched/obs/registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "lorasched/obs/cluster_trace.h"
#include "lorasched/obs/federation.h"
#include "lorasched/obs/json.h"
#include "lorasched/obs/span.h"
#include "lorasched/service/service_metrics.h"
#include "lorasched/util/stats.h"

namespace lorasched::obs {
namespace {

// --- Counter / Gauge --------------------------------------------------------

TEST(Counter, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAddAndRunningMax) {
  Gauge g;
  g.set(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.set_max(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.set_max(2.0);  // smaller: no change
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

// --- Histogram --------------------------------------------------------------

HistogramOptions coarse_options() {
  // One bucket per octave over [1, 16): finite buckets [1,2) [2,4) [4,8)
  // [8,16), so bucket membership is easy to reason about by hand.
  HistogramOptions options;
  options.min = 1.0;
  options.max = 16.0;
  options.buckets_per_octave = 1;
  return options;
}

TEST(Histogram, EmptySnapshot) {
  const Histogram h(coarse_options());
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
  EXPECT_DOUBLE_EQ(snap.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(snap.percentile(99.0), 0.0);
}

TEST(Histogram, OneSampleEveryPercentileIsThatSample) {
  Histogram h(coarse_options());
  h.record(3.0);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.mean(), 3.0);
  // Clamping to [min_seen, max_seen] collapses a single sample exactly.
  EXPECT_DOUBLE_EQ(snap.percentile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(snap.percentile(50.0), 3.0);
  EXPECT_DOUBLE_EQ(snap.percentile(100.0), 3.0);
}

TEST(Histogram, BucketBoundaries) {
  Histogram h(coarse_options());
  h.record(1.0);   // first finite bucket, lower edge inclusive
  h.record(1.99);  // still [1, 2)
  h.record(2.0);   // [2, 4), boundary lands up
  h.record(7.9);   // [4, 8)
  h.record(8.0);   // [8, 16)
  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.finite_buckets(), 4u);
  ASSERT_EQ(snap.counts.size(), 6u);  // + underflow/overflow
  EXPECT_EQ(snap.counts[0], 0u);      // underflow
  EXPECT_EQ(snap.counts[1], 2u);      // [1, 2)
  EXPECT_EQ(snap.counts[2], 1u);      // [2, 4)
  EXPECT_EQ(snap.counts[3], 1u);      // [4, 8)
  EXPECT_EQ(snap.counts[4], 1u);      // [8, 16)
  EXPECT_EQ(snap.counts[5], 0u);      // overflow
  EXPECT_DOUBLE_EQ(snap.bucket_lower(0), 1.0);
  EXPECT_DOUBLE_EQ(snap.bucket_upper(0), 2.0);
  EXPECT_DOUBLE_EQ(snap.bucket_lower(3), 8.0);
  EXPECT_DOUBLE_EQ(snap.bucket_upper(3), 16.0);
}

TEST(Histogram, UnderflowAndOverflow) {
  Histogram h(coarse_options());
  h.record(0.25);   // below min
  h.record(16.0);   // at max: overflow by contract
  h.record(1e9);    // far above
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.counts.front(), 1u);
  EXPECT_EQ(snap.counts.back(), 2u);
  EXPECT_EQ(snap.count, 3u);
  // min/max tracking is exact even for out-of-range samples.
  EXPECT_DOUBLE_EQ(snap.min_seen, 0.25);
  EXPECT_DOUBLE_EQ(snap.max_seen, 1e9);
  // Percentiles stay within the observed range even in overflow.
  EXPECT_LE(snap.percentile(99.0), 1e9);
  EXPECT_GE(snap.percentile(1.0), 0.25);
}

TEST(Histogram, ConcurrentFirstRecordsKeepExactMinMax) {
  // Regression: a first-sample seeding flag let the exchange loser run
  // its min/max CAS against the pre-seed 0.0 and lose its sample (e.g.
  // concurrent first records of 3 and 5 could leave min_seen == 5). With
  // +/-inf construction seeds every record goes through the CAS loops.
  for (int round = 0; round < 200; ++round) {
    Histogram h(coarse_options());
    std::atomic<int> barrier{0};
    auto record = [&](double value) {
      barrier.fetch_add(1);
      while (barrier.load() < 2) {
      }
      h.record(value);
    };
    std::thread a(record, 3.0);
    std::thread b(record, 5.0);
    a.join();
    b.join();
    const HistogramSnapshot snap = h.snapshot();
    ASSERT_DOUBLE_EQ(snap.min_seen, 3.0);
    ASSERT_DOUBLE_EQ(snap.max_seen, 5.0);
  }
}

TEST(Histogram, NanSamplesAreDropped) {
  Histogram h(coarse_options());
  h.record(std::nan(""));
  h.record(2.0);
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(Histogram, PercentileTracksExactWithinBucketError) {
  // Default 8 buckets/octave bounds relative error at 2^(1/8)-1 ~ 9.05%.
  HistogramOptions options;
  options.min = 1e-6;
  options.max = 10.0;
  options.buckets_per_octave = 8;
  Histogram h(options);
  std::vector<double> exact;
  // A skewed latency-like stream spanning several octaves.
  for (int i = 1; i <= 2000; ++i) {
    const double v = 1e-4 * std::pow(1.004, i);
    h.record(v);
    exact.push_back(v);
  }
  const HistogramSnapshot snap = h.snapshot();
  for (const double p : {10.0, 50.0, 90.0, 99.0}) {
    const double truth = util::percentile(exact, p);
    const double estimate = snap.percentile(p);
    EXPECT_NEAR(estimate, truth, truth * 0.0905)
        << "p" << p << " drifted beyond one bucket width";
  }
  // Mean and count are exact regardless of bucketing.
  double sum = 0.0;
  for (const double v : exact) sum += v;
  EXPECT_EQ(snap.count, exact.size());
  EXPECT_NEAR(snap.mean(), sum / static_cast<double>(exact.size()), 1e-12);
}

// --- Registry ---------------------------------------------------------------

TEST(Registry, GetOrCreateReturnsSameHandle) {
  MetricsRegistry registry;
  Counter& a = registry.counter("requests_total", "help");
  Counter& b = registry.counter("requests_total");
  EXPECT_EQ(&a, &b);
  a.add(5);
  EXPECT_EQ(b.value(), 5u);
}

TEST(Registry, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("metric_a");
  EXPECT_THROW(registry.gauge("metric_a"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("metric_a"), std::invalid_argument);
}

TEST(Registry, RejectsInvalidPrometheusNames) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.counter(""), std::invalid_argument);
  EXPECT_THROW(registry.counter("9starts_with_digit"), std::invalid_argument);
  EXPECT_THROW(registry.counter("has space"), std::invalid_argument);
  EXPECT_THROW(registry.counter("has-dash"), std::invalid_argument);
  EXPECT_NO_THROW(registry.counter("ok_name:with_colon_42"));
}

TEST(Registry, SnapshotCarriesAllKinds) {
  MetricsRegistry registry;
  registry.counter("c_total", "a counter").add(3);
  registry.gauge("g", "a gauge").set(1.5);
  registry.histogram("h_seconds", coarse_options(), "a histogram").record(2.0);
  const std::vector<MetricSnapshot> snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "c_total");
  EXPECT_EQ(snap[0].kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(snap[0].value, 3.0);
  EXPECT_EQ(snap[1].kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(snap[1].value, 1.5);
  EXPECT_EQ(snap[2].kind, MetricKind::kHistogram);
  EXPECT_EQ(snap[2].histogram.count, 1u);
}

TEST(Registry, PrometheusExposition) {
  MetricsRegistry registry;
  registry.counter("c_total", "counts things").add(7);
  registry.gauge("depth").set(4.0);
  Histogram& h = registry.histogram("lat_seconds", coarse_options());
  h.record(1.5);
  h.record(3.0);
  std::ostringstream out;
  registry.write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# HELP c_total counts things"), std::string::npos);
  EXPECT_NE(text.find("# TYPE c_total counter"), std::string::npos);
  EXPECT_NE(text.find("c_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_seconds histogram"), std::string::npos);
  // Buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"2\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"4\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum 4.5"), std::string::npos);
}

TEST(Registry, PrometheusFoldsUnderflowIntoFirstFiniteBucket) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("edge_seconds", coarse_options());
  h.record(0.5);  // underflow
  h.record(1.0);  // exactly min: first finite bucket by record()'s contract
  std::ostringstream out;
  registry.write_prometheus(out);
  const std::string text = out.str();
  // No le="1" series: `le` is inclusive, and a sample equal to min sits in
  // [1, 2), which an le="1" cumulative could not cover.
  EXPECT_EQ(text.find("edge_seconds_bucket{le=\"1\"}"), std::string::npos);
  // The first emitted bucket is le="2" and already includes the underflow.
  EXPECT_NE(text.find("edge_seconds_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("edge_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("edge_seconds_count 2"), std::string::npos);
}

// --- JSON -------------------------------------------------------------------

TEST(Json, RoundTripsNestedDocument) {
  Json::Object obj;
  obj["flag"] = Json(true);
  obj["name"] = Json("pd\"FTSP\"\n");
  obj["nil"] = Json();
  Json::Array arr;
  arr.push_back(Json(1));
  arr.push_back(Json(0.1));  // needs 17 significant digits to round-trip
  arr.push_back(Json(-2.5e-300));
  obj["xs"] = Json(std::move(arr));
  const Json doc(std::move(obj));
  const Json back = Json::parse(doc.dump());
  EXPECT_EQ(back, doc);
  EXPECT_DOUBLE_EQ(back.at("xs").as_array()[1].as_number(), 0.1);
}

TEST(Json, DeterministicObjectOrder) {
  Json::Object obj;
  obj["zebra"] = Json(1);
  obj["alpha"] = Json(2);
  EXPECT_EQ(Json(std::move(obj)).dump(), "{\"alpha\":2,\"zebra\":1}");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse(""), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("{\"a\":1,}"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("[1, 2] garbage"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("{'a': 1}"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("\"unterminated"), std::invalid_argument);
}

TEST(Json, AccessorsThrowOnKindMismatch) {
  const Json number(1.0);
  EXPECT_THROW((void)number.as_string(), std::invalid_argument);
  EXPECT_THROW((void)number.as_object(), std::invalid_argument);
  EXPECT_THROW((void)number.at("missing"), std::invalid_argument);
  EXPECT_EQ(number.find("x"), nullptr);
}

// --- Spans ------------------------------------------------------------------

/// Restores the global profiler to its pristine disabled state on scope
/// exit so span tests cannot leak into the tracing-equivalence tests.
struct ProfilerGuard {
  ~ProfilerGuard() {
    Profiler::instance().set_enabled(false);
    Profiler::instance().set_timeline(false);
    Profiler::instance().reset();
  }
};

const SpanStats* find_span(const std::vector<SpanStats>& spans,
                           const std::string& name) {
  for (const SpanStats& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

void spin_briefly() {
  // Enough work for a measurable (nonzero) steady_clock delta.
  volatile double x = 1.0;
  for (int i = 0; i < 5000; ++i) x = x * 1.0000001 + 1e-9;
}

TEST(Span, DisabledSpansRecordNothing) {
  const ProfilerGuard guard;
  Profiler::instance().reset();
  ASSERT_FALSE(Profiler::instance().enabled());
  { LORASCHED_SPAN("test/disabled"); }
  const std::vector<SpanStats> spans = Profiler::instance().snapshot();
  const SpanStats* s = find_span(spans, "test/disabled");
  if (s != nullptr) {
    EXPECT_EQ(s->count, 0u);
  }
}

TEST(Span, NestedSelfTimeExcludesChildren) {
  const ProfilerGuard guard;
  Profiler::instance().reset();
  Profiler::instance().set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    LORASCHED_SPAN("test/outer");
    spin_briefly();
    {
      LORASCHED_SPAN("test/inner");
      spin_briefly();
    }
  }
  const std::vector<SpanStats> spans = Profiler::instance().snapshot();
  const SpanStats* outer = find_span(spans, "test/outer");
  const SpanStats* inner = find_span(spans, "test/inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 3u);
  EXPECT_EQ(inner->count, 3u);
  EXPECT_GT(inner->total_seconds, 0.0);
  // The inner span has no children, so self == total; the outer span's
  // self time is exactly total minus its only child's total.
  EXPECT_DOUBLE_EQ(inner->self_seconds, inner->total_seconds);
  EXPECT_NEAR(outer->self_seconds, outer->total_seconds - inner->total_seconds,
              1e-12);
  EXPECT_GT(outer->self_seconds, 0.0);
}

TEST(Span, TimelineIsBoundedAndCountsDrops) {
  const ProfilerGuard guard;
  Profiler::instance().reset();
  Profiler::instance().set_enabled(true);
  Profiler::instance().set_timeline(true, 4);
  for (int i = 0; i < 7; ++i) {
    LORASCHED_SPAN("test/timeline");
  }
  EXPECT_EQ(Profiler::instance().timeline_events().size(), 4u);
  EXPECT_EQ(Profiler::instance().timeline_dropped(), 3u);
  const std::vector<SpanEvent> events = Profiler::instance().timeline_events();
  for (const SpanEvent& e : events) {
    EXPECT_EQ(Profiler::instance().site_name(e.site), "test/timeline");
  }
}

TEST(Span, ResetZeroesAggregates) {
  const ProfilerGuard guard;
  Profiler::instance().set_enabled(true);
  { LORASCHED_SPAN("test/reset"); }
  Profiler::instance().reset();
  const std::vector<SpanStats> spans = Profiler::instance().snapshot();
  const SpanStats* s = find_span(spans, "test/reset");
  ASSERT_NE(s, nullptr);  // interned sites persist
  EXPECT_EQ(s->count, 0u);
  EXPECT_DOUBLE_EQ(s->total_seconds, 0.0);
}

// --- Concurrency (exercised under TSan in CI) -------------------------------

TEST(ObsConcurrency, ParallelRecordingIsRaceFree) {
  const ProfilerGuard guard;
  Profiler::instance().reset();
  Profiler::instance().set_enabled(true);
  Profiler::instance().set_timeline(true, 1024);

  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::atomic<int> barrier{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, &barrier, t] {
      barrier.fetch_add(1);
      while (barrier.load() < kThreads) {
      }
      // Handles are get-or-create under contention on purpose.
      Counter& c = registry.counter("conc_total");
      Gauge& g = registry.gauge("conc_gauge");
      Histogram& h = registry.histogram("conc_seconds");
      for (int i = 0; i < kIters; ++i) {
        LORASCHED_SPAN("test/concurrent");
        c.add();
        g.set_max(static_cast<double>(t * kIters + i));
        h.record(1e-6 * static_cast<double>(i + 1));
        if (i % 512 == 0) (void)registry.snapshot();
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(registry.counter("conc_total").value(),
            static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_DOUBLE_EQ(registry.gauge("conc_gauge").value(),
                   static_cast<double>(kThreads * kIters - 1));
  const HistogramSnapshot h = registry.histogram("conc_seconds").snapshot();
  EXPECT_EQ(h.count, static_cast<std::uint64_t>(kThreads * kIters));
  const std::vector<SpanStats> spans = Profiler::instance().snapshot();
  const SpanStats* s = find_span(spans, "test/concurrent");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, static_cast<std::uint64_t>(kThreads * kIters));
}

// --- Metrics federation (DESIGN.md §12) -------------------------------------

MetricSnapshot counter_snapshot(std::string name, double value) {
  MetricSnapshot m;
  m.name = std::move(name);
  m.kind = MetricKind::kCounter;
  m.value = value;
  return m;
}

std::vector<MetricsGroup> one_counter(std::int32_t shard, double value) {
  MetricsGroup g;
  g.shard = shard;
  g.metrics.push_back(counter_snapshot("hits_total", value));
  return {g};
}

TEST(Federation, EscapesHostileLabelValues) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("back\\slash"), "back\\\\slash");
  EXPECT_EQ(escape_label_value("quo\"te"), "quo\\\"te");
  EXPECT_EQ(escape_label_value("new\nline"), "new\\nline");

  // A hostile agent name cannot break the exposition: the label value
  // stays one quoted token on one sample line.
  FederatedRegistry fed;
  const std::string hostile = "agent\"} 1\nevil_total{x=\"\\";
  ASSERT_TRUE(fed.absorb(hostile, 1, one_counter(-1, 3.0)));
  std::ostringstream out;
  fed.write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("agent=\"agent\\\"} 1\\nevil_total{x=\\\"\\\\\""),
            std::string::npos);
  EXPECT_EQ(text.find("\nevil_total"), std::string::npos);
}

TEST(Federation, AbsorbReplacesInsteadOfAdding) {
  FederatedRegistry fed;
  ASSERT_TRUE(fed.absorb("a", 1, one_counter(0, 5.0)));
  EXPECT_DOUBLE_EQ(fed.value("a", 0, "hits_total"), 5.0);
  // Cumulative re-push: replaces the window, never adds.
  ASSERT_TRUE(fed.absorb("a", 2, one_counter(0, 7.0)));
  EXPECT_DOUBLE_EQ(fed.value("a", 0, "hits_total"), 7.0);
  // A duplicate sequence number (reconnect-time re-send) is dropped.
  EXPECT_FALSE(fed.absorb("a", 2, one_counter(0, 9.0)));
  EXPECT_DOUBLE_EQ(fed.value("a", 0, "hits_total"), 7.0);
}

TEST(Federation, CountersStayMonotoneAcrossAgentRestart) {
  FederatedRegistry fed;
  ASSERT_TRUE(fed.absorb("a", 5, one_counter(0, 7.0)));
  // The agent process restarted: its counter restarted below the last
  // absorbed value, and its push sequence regressed. Both are accepted,
  // and the exported series keeps rising: 7 (folded into base) + 2.
  ASSERT_TRUE(fed.absorb("a", 1, one_counter(0, 2.0)));
  EXPECT_DOUBLE_EQ(fed.value("a", 0, "hits_total"), 9.0);
  ASSERT_TRUE(fed.absorb("a", 2, one_counter(0, 4.0)));
  EXPECT_DOUBLE_EQ(fed.value("a", 0, "hits_total"), 11.0);
}

TEST(Federation, DeadAgentPushesAreDropped) {
  FederatedRegistry fed;
  ASSERT_TRUE(fed.absorb("a", 1, one_counter(0, 5.0)));
  fed.mark_dead("a");
  // A late push queued behind the failed link must not land.
  EXPECT_FALSE(fed.absorb("a", 2, one_counter(0, 50.0)));
  EXPECT_DOUBLE_EQ(fed.value("a", 0, "hits_total"), 5.0);  // last known
  fed.mark_alive("a");
  EXPECT_TRUE(fed.absorb("a", 2, one_counter(0, 6.0)));
  EXPECT_DOUBLE_EQ(fed.value("a", 0, "hits_total"), 6.0);
}

TEST(Federation, HistogramMergePreservesBucketsAndMinMax) {
  const HistogramOptions options{.min = 1e-6, .max = 1.0};
  Histogram first(options);
  Histogram second(options);
  first.record(1e-5);
  first.record(3e-4);
  second.record(2e-3);
  second.record(0.5);
  second.record(5.0);  // overflow bucket

  HistogramSnapshot merged = first.snapshot();
  merge_histogram(merged, second.snapshot());
  EXPECT_EQ(merged.count, 5u);
  EXPECT_DOUBLE_EQ(merged.sum, 1e-5 + 3e-4 + 2e-3 + 0.5 + 5.0);
  EXPECT_DOUBLE_EQ(merged.min_seen, 1e-5);
  EXPECT_DOUBLE_EQ(merged.max_seen, 5.0);
  std::uint64_t total = 0;
  for (const std::uint64_t c : merged.counts) total += c;
  EXPECT_EQ(total, 5u);  // every sample still in exactly one bucket

  // Mismatched grids: the longer tail folds into the overflow bucket, so
  // count/sum/min/max stay exact.
  Histogram coarse(HistogramOptions{.min = 1e-6, .max = 1e-3});
  coarse.record(1e-5);
  HistogramSnapshot into = coarse.snapshot();
  merge_histogram(into, second.snapshot());
  EXPECT_EQ(into.count, 4u);
  EXPECT_DOUBLE_EQ(into.max_seen, 5.0);
  total = 0;
  for (const std::uint64_t c : into.counts) total += c;
  EXPECT_EQ(total, 4u);
}

TEST(Federation, HistogramSeriesMergeAcrossRestart) {
  const HistogramOptions options{.min = 1e-6, .max = 1.0};
  Histogram before(options);
  before.record(1e-3);
  before.record(1e-2);
  Histogram after(options);
  after.record(1e-4);

  const auto push = [](const HistogramSnapshot& h) {
    MetricsGroup g;
    g.shard = 2;
    MetricSnapshot m;
    m.name = "rtt_seconds";
    m.kind = MetricKind::kHistogram;
    m.histogram = h;
    g.metrics.push_back(std::move(m));
    return std::vector<MetricsGroup>{g};
  };

  FederatedRegistry fed;
  ASSERT_TRUE(fed.absorb("a", 5, push(before.snapshot())));
  EXPECT_EQ(fed.histogram("a", 2, "rtt_seconds").count, 2u);
  // Restart (sequence regressed): the new window's count is below the last
  // one — the old window folds into the base and the totals keep rising.
  ASSERT_TRUE(fed.absorb("a", 1, push(after.snapshot())));
  const HistogramSnapshot merged = fed.histogram("a", 2, "rtt_seconds");
  EXPECT_EQ(merged.count, 3u);
  EXPECT_DOUBLE_EQ(merged.min_seen, 1e-4);
  EXPECT_DOUBLE_EQ(merged.max_seen, 1e-2);
}

TEST(Federation, ExpositionLabelsEverySeriesAndTypesNamesOnce) {
  FederatedRegistry fed;
  std::vector<MetricsGroup> groups;
  MetricsGroup agent_level;
  agent_level.shard = -1;
  agent_level.metrics.push_back(counter_snapshot("hits_total", 1.0));
  MetricsGroup shard_level;
  shard_level.shard = 3;
  shard_level.metrics.push_back(counter_snapshot("hits_total", 2.0));
  groups.push_back(agent_level);
  groups.push_back(shard_level);
  ASSERT_TRUE(fed.absorb("a", 1, groups));
  ASSERT_TRUE(fed.absorb("b", 1, one_counter(0, 4.0)));

  std::ostringstream out;
  fed.write_prometheus(out);
  const std::string text = out.str();
  // One TYPE header for the shared name, three labeled samples.
  std::size_t type_lines = 0;
  for (std::size_t at = text.find("# TYPE hits_total");
       at != std::string::npos; at = text.find("# TYPE hits_total", at + 1)) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
  EXPECT_NE(text.find("hits_total{agent=\"a\"} 1"), std::string::npos);
  EXPECT_NE(text.find("hits_total{agent=\"a\",shard=\"3\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("hits_total{agent=\"b\",shard=\"0\"} 4"),
            std::string::npos);
  EXPECT_DOUBLE_EQ(fed.aggregate_value("hits_total"), 7.0);
  EXPECT_EQ(fed.series_count(), 3u);
}

// --- Cluster-wide bid tracing (DESIGN.md §12) -------------------------------

TEST(ClusterTrace, IdsAreDeterministicAndNeverZero) {
  // Same logical coordinates, same ids — across processes and runs.
  EXPECT_EQ(trace_mix(kTraceSeed, 7), trace_mix(kTraceSeed, 7));
  EXPECT_NE(trace_mix(kTraceSeed, 7), trace_mix(kTraceSeed, 8));
  EXPECT_NE(trace_mix(kTraceSeed, 7), 0u);  // 0 is the tracing-off sentinel

  ClusterTraceCollector collector;
  const RoundTraceCtx a = collector.begin_round(0, 5);
  collector.end_round(0);
  const RoundTraceCtx b = collector.begin_round(1, 5);
  collector.end_round(1);
  EXPECT_EQ(a.trace_id, b.trace_id);  // one trace per slot
  EXPECT_NE(a.span_id, b.span_id);    // one bid span per (shard, round)
  EXPECT_TRUE(a.active());
}

TEST(ClusterTrace, MergedChromeTraceParentsAgentSpansToLeader) {
  ClusterTraceCollector collector;
  const RoundTraceCtx ctx = collector.begin_round(0, 3);
  collector.end_round(0);

  // What a host agent would ship back on RoundResults.
  RemoteSpan round_span;
  round_span.name = "agent_round";
  round_span.trace_id = ctx.trace_id;
  round_span.span_id = trace_mix(ctx.span_id, 1);
  round_span.parent_span = ctx.span_id;
  round_span.duration_ns = 2000;
  RemoteSpan decide_span;
  decide_span.name = "decide";
  decide_span.task = 42;
  decide_span.trace_id = ctx.trace_id;
  decide_span.span_id = trace_mix(round_span.span_id, 43);
  decide_span.parent_span = round_span.span_id;
  decide_span.start_offset_ns = 100;
  decide_span.duration_ns = 900;
  collector.absorb("127.0.0.1:7701", 0, 3, {round_span, decide_span});

  EXPECT_EQ(collector.events(), 3u);  // leader_round + the two agent spans
  const auto summaries = collector.summaries();
  ASSERT_EQ(summaries.size(), 3u);

  std::ostringstream out;
  collector.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"leader_round\""), std::string::npos);
  EXPECT_NE(json.find("\"agent_round\""), std::string::npos);
  EXPECT_NE(json.find("\"agent:127.0.0.1:7701\""), std::string::npos);
  // The agent round span names the leader's bid span as its parent.
  char leader_span_hex[32];
  std::snprintf(leader_span_hex, sizeof leader_span_hex, "0x%016llx",
                static_cast<unsigned long long>(ctx.span_id));
  std::size_t hits = 0;
  for (std::size_t at = json.find(leader_span_hex); at != std::string::npos;
       at = json.find(leader_span_hex, at + 1)) {
    ++hits;
  }
  // Once as the leader span's own id, once as the agent span's parent.
  EXPECT_GE(hits, 2u);
}

TEST(ClusterTrace, EventCapDropsInsteadOfGrowing) {
  ClusterTraceCollector collector(/*max_events=*/2);
  for (int round = 0; round < 5; ++round) {
    collector.begin_round(0, round);
    collector.end_round(0);
  }
  EXPECT_EQ(collector.events(), 2u);
  EXPECT_EQ(collector.dropped(), 3u);
}

}  // namespace
}  // namespace lorasched::obs

// --- ServiceMetrics on the registry ----------------------------------------

namespace lorasched::service {
namespace {

SlotReport slot_report(Slot slot, std::size_t batch, std::size_t queue_depth,
                       double decide_seconds) {
  SlotReport report;
  report.slot = slot;
  report.batch = batch;
  report.queue_depth = queue_depth;
  report.decide_seconds = decide_seconds;
  return report;
}

TEST(ServiceMetrics, QueueDepthGaugeTracksCurrentAndMax) {
  ServiceMetrics metrics;
  metrics.record_slot(slot_report(0, 2, 10, 2e-4), 1e-4);
  metrics.record_slot(slot_report(1, 1, 25, 1e-4), 1e-4);
  metrics.record_slot(slot_report(2, 0, 3, 0.0), 0.0);
  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.queue_depth, 3u);       // most recent drain
  EXPECT_EQ(snap.max_queue_depth, 25u);  // high-water mark
  EXPECT_EQ(snap.slots_processed, 3u);
  EXPECT_EQ(snap.bids_decided, 3u);
}

TEST(ServiceMetrics, DecideLatencyFromHistogram) {
  ServiceMetrics metrics;
  for (int i = 0; i < 100; ++i) {
    metrics.record_slot(slot_report(i, 1, 0, 1e-3), 1e-3);
  }
  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_NEAR(snap.decide_mean, 1e-3, 1e-15);  // mean is exact
  EXPECT_NEAR(snap.decide_p50, 1e-3, 1e-3 * 0.0905);
  EXPECT_NEAR(snap.decide_p99, 1e-3, 1e-3 * 0.0905);
}

TEST(ServiceMetrics, CountersFlowThroughToRegistryExposition) {
  ServiceMetrics metrics;
  metrics.record_ingest();
  metrics.record_ingest();
  metrics.record_admitted();
  metrics.record_rejected();
  metrics.record_rejected_late();
  std::ostringstream out;
  metrics.registry().write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("service_bids_ingested_total 2"), std::string::npos);
  EXPECT_NE(text.find("service_bids_admitted_total 1"), std::string::npos);
  EXPECT_NE(text.find("service_bids_rejected_total 1"), std::string::npos);
  EXPECT_NE(text.find("service_bids_rejected_late_total 1"),
            std::string::npos);
  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.bids_ingested, 2u);
  EXPECT_EQ(snap.rejected_late, 1u);
}

}  // namespace
}  // namespace lorasched::service
