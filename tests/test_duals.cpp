// Tests for the dual state (eq. 7/8), F(il) (eq. 10), schedule finalization
// (§3.2), and the payment rule (eq. 14).
#include "lorasched/core/duals.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "lorasched/core/pricing.h"
#include "lorasched/core/schedule.h"
#include "test_helpers.h"

namespace lorasched {
namespace {

using testing::flat_energy;
using testing::make_task;
using testing::mini_cluster;

Schedule two_slot_schedule(const Task& task, const Cluster& cluster,
                           const EnergyModel& energy) {
  Schedule schedule;
  schedule.task = task.id;
  schedule.run = {{0, 1}, {0, 2}};
  finalize_schedule(schedule, task, cluster, energy);
  return schedule;
}

TEST(Schedule, FinalizeComputesTotals) {
  const Cluster cluster = mini_cluster();
  const EnergyModel energy = flat_energy();
  const Task task = make_task(0, 0, 10, 1000.0, 3.0, 0.5, 12.0);
  const Schedule schedule = two_slot_schedule(task, cluster, energy);
  EXPECT_DOUBLE_EQ(schedule.total_compute, 1000.0);  // 2 slots * 500
  EXPECT_DOUBLE_EQ(schedule.total_mem, 6.0);         // 2 slots * 3 GB
  EXPECT_DOUBLE_EQ(schedule.norm_compute, 1.0);      // 2 slots * 500/1000
  EXPECT_DOUBLE_EQ(schedule.norm_mem, 0.375);        // 2 slots * 3/16
  // energy: 2 slots * full_node(0.2) * share(0.5) = 0.2.
  EXPECT_NEAR(schedule.energy_cost, 0.2, 1e-12);
  // b_il = bid - vendor(0) - energy.
  EXPECT_NEAR(schedule.welfare_gain, 11.8, 1e-12);
}

TEST(Schedule, FinalizeIncludesVendorPrice) {
  const Cluster cluster = mini_cluster();
  const EnergyModel energy = flat_energy();
  Task task = make_task(0, 0, 10, 1000.0, 3.0, 0.5, 12.0);
  Schedule schedule;
  schedule.task = task.id;
  schedule.vendor = 1;
  schedule.vendor_price = 2.5;
  schedule.run = {{0, 1}};
  finalize_schedule(schedule, task, cluster, energy);
  EXPECT_NEAR(schedule.welfare_gain, 12.0 - 2.5 - 0.1, 1e-12);
}

TEST(Schedule, FinalizeRejectsNonIncreasingSlots) {
  const Cluster cluster = mini_cluster();
  const EnergyModel energy = flat_energy();
  const Task task = make_task(0, 0, 10, 1000.0);
  Schedule schedule;
  schedule.task = task.id;
  schedule.run = {{0, 2}, {1, 2}};  // same slot twice (4b violation)
  EXPECT_THROW(finalize_schedule(schedule, task, cluster, energy),
               std::invalid_argument);
}

TEST(Schedule, CompletionSlotAndEmpty) {
  Schedule schedule;
  EXPECT_TRUE(schedule.empty());
  EXPECT_EQ(schedule.completion_slot(), -1);
  schedule.run = {{0, 3}, {0, 7}};
  EXPECT_FALSE(schedule.empty());
  EXPECT_EQ(schedule.completion_slot(), 7);
}

TEST(Schedule, UnitWelfareMatchesDefinition) {
  const Cluster cluster = mini_cluster();
  const EnergyModel energy = flat_energy();
  const Task task = make_task(0, 0, 10, 1000.0, 3.0, 0.5, 12.0);
  const Schedule schedule = two_slot_schedule(task, cluster, energy);
  // b̄_il = b_il / (norm_compute + norm_mem) — normalized units (duals.h).
  EXPECT_NEAR(unit_welfare(schedule), 11.8 / 1.375, 1e-12);
  EXPECT_EQ(unit_welfare(Schedule{}), 0.0);
}

TEST(DualState, StartsAtZero) {
  const DualState duals(2, 10);
  for (NodeId k = 0; k < 2; ++k) {
    for (Slot t = 0; t < 10; ++t) {
      EXPECT_EQ(duals.lambda(k, t), 0.0);
      EXPECT_EQ(duals.phi(k, t), 0.0);
    }
  }
}

TEST(DualState, RejectsBadDimensions) {
  EXPECT_THROW(DualState(0, 5), std::invalid_argument);
  EXPECT_THROW(DualState(2, 0), std::invalid_argument);
}

TEST(DualState, UpdateMatchesEquationSevenAndEight) {
  const Cluster cluster = mini_cluster();
  const EnergyModel energy = flat_energy();
  const Task task = make_task(0, 0, 10, 1000.0, 3.0, 0.5, 12.0);
  const Schedule schedule = two_slot_schedule(task, cluster, energy);
  DualState duals(2, 10);
  const double alpha = 0.01;
  const double beta = 3.0;
  duals.apply_update(task, schedule, cluster, alpha, beta);

  const double b_bar = unit_welfare(schedule);
  // From zero: λ' = 0*(1 + s/C) + α b̄ s/C.
  const double s = 500.0;
  const double c_p = 1000.0;
  const double expected_lambda = alpha * b_bar * s / c_p;
  EXPECT_NEAR(duals.lambda(0, 1), expected_lambda, 1e-15);
  EXPECT_NEAR(duals.lambda(0, 2), expected_lambda, 1e-15);
  EXPECT_EQ(duals.lambda(0, 3), 0.0);  // untouched slot
  EXPECT_EQ(duals.lambda(1, 1), 0.0);  // untouched node

  const double r = 3.0;
  const double c_m = 16.0;  // 20 - r_b(4)
  EXPECT_NEAR(duals.phi(0, 1), beta * b_bar * r / c_m, 1e-15);
}

TEST(DualState, UpdateIsMultiplicativeOnSecondTask) {
  const Cluster cluster = mini_cluster();
  const EnergyModel energy = flat_energy();
  const Task task = make_task(0, 0, 10, 1000.0, 3.0, 0.5, 12.0);
  const Schedule schedule = two_slot_schedule(task, cluster, energy);
  DualState duals(2, 10);
  duals.apply_update(task, schedule, cluster, 0.01, 3.0);
  const double lambda1 = duals.lambda(0, 1);
  duals.apply_update(task, schedule, cluster, 0.01, 3.0);
  // λ2 = λ1 (1 + s/C) + α b̄ s/C = λ1 (1 + 0.5) + λ1 = 2.5 λ1.
  EXPECT_NEAR(duals.lambda(0, 1), 2.5 * lambda1, 1e-15);
}

TEST(DualState, DualsMonotonicallyIncrease) {
  const Cluster cluster = mini_cluster();
  const EnergyModel energy = flat_energy();
  const Task task = make_task(0, 0, 10, 1000.0, 3.0, 0.5, 12.0);
  const Schedule schedule = two_slot_schedule(task, cluster, energy);
  DualState duals(2, 10);
  double prev_lambda = 0.0;
  double prev_phi = 0.0;
  for (int i = 0; i < 20; ++i) {
    duals.apply_update(task, schedule, cluster, 0.01, 3.0);
    EXPECT_GT(duals.lambda(0, 1), prev_lambda);
    EXPECT_GT(duals.phi(0, 1), prev_phi);
    prev_lambda = duals.lambda(0, 1);
    prev_phi = duals.phi(0, 1);
  }
}

TEST(DualState, MaxOverScheduleSelectsLargestCell) {
  DualState duals(2, 10);
  duals.set_lambda(0, 1, 0.5);
  duals.set_lambda(0, 2, 0.9);
  duals.set_phi(0, 2, 0.1);
  duals.set_phi(0, 1, 0.4);
  Schedule schedule;
  schedule.run = {{0, 1}, {0, 2}};
  EXPECT_DOUBLE_EQ(duals.max_lambda(schedule), 0.9);
  EXPECT_DOUBLE_EQ(duals.max_phi(schedule), 0.4);
  EXPECT_EQ(duals.max_lambda(Schedule{}), 0.0);
}

TEST(ObjectiveValue, MatchesEquationTen) {
  const Cluster cluster = mini_cluster();
  const EnergyModel energy = flat_energy();
  const Task task = make_task(0, 0, 10, 1000.0, 3.0, 0.5, 12.0);
  const Schedule schedule = two_slot_schedule(task, cluster, energy);
  DualState duals(2, 10);
  duals.set_lambda(0, 1, 0.001);
  duals.set_lambda(0, 2, 0.002);
  duals.set_phi(0, 1, 0.05);
  // F = b_il − maxλ Σs̃ − maxφ Σr̃ (normalized volumes).
  const double expected =
      schedule.welfare_gain - 0.002 * schedule.norm_compute -
      0.05 * schedule.norm_mem;
  EXPECT_NEAR(objective_value(schedule, duals), expected, 1e-12);
}

TEST(ObjectiveValue, ZeroDualsGiveWelfareGain) {
  const Cluster cluster = mini_cluster();
  const EnergyModel energy = flat_energy();
  const Task task = make_task(0, 0, 10, 1000.0, 3.0, 0.5, 12.0);
  const Schedule schedule = two_slot_schedule(task, cluster, energy);
  const DualState duals(2, 10);
  EXPECT_DOUBLE_EQ(objective_value(schedule, duals), schedule.welfare_gain);
}

TEST(Pricing, PaymentMatchesEquationFourteen) {
  const Cluster cluster = mini_cluster();
  const EnergyModel energy = flat_energy();
  Task task = make_task(0, 0, 10, 1000.0, 3.0, 0.5, 12.0);
  Schedule schedule = two_slot_schedule(task, cluster, energy);
  schedule.vendor_price = 1.5;
  DualState duals(2, 10);
  duals.set_lambda(0, 1, 0.001);
  duals.set_phi(0, 2, 0.02);
  const Money expected = 1.5 + schedule.energy_cost +
                         0.001 * schedule.norm_compute +
                         0.02 * schedule.norm_mem;
  EXPECT_NEAR(payment(schedule, duals), expected, 1e-12);
}

TEST(Pricing, PaymentIndependentOfBid) {
  const Cluster cluster = mini_cluster();
  const EnergyModel energy = flat_energy();
  DualState duals(2, 10);
  duals.set_lambda(0, 1, 0.003);
  Task cheap = make_task(0, 0, 10, 1000.0, 3.0, 0.5, 5.0);
  Task rich = make_task(0, 0, 10, 1000.0, 3.0, 0.5, 500.0);
  const Schedule s1 = two_slot_schedule(cheap, cluster, energy);
  const Schedule s2 = two_slot_schedule(rich, cluster, energy);
  EXPECT_DOUBLE_EQ(payment(s1, duals), payment(s2, duals));
}

TEST(Pricing, FreeResourcesCostVendorPlusEnergy) {
  const Cluster cluster = mini_cluster();
  const EnergyModel energy = flat_energy();
  Task task = make_task(0, 0, 10, 1000.0, 3.0, 0.5, 12.0);
  Schedule schedule = two_slot_schedule(task, cluster, energy);
  schedule.vendor_price = 0.7;
  const DualState duals(2, 10);  // all-zero prices
  // Zero duals: the winner pays only the vendor and the operational
  // pass-through (see pricing.h's reproduction note).
  EXPECT_DOUBLE_EQ(payment(schedule, duals), 0.7 + schedule.energy_cost);
}

TEST(Pricing, FromPricesAgreesWithDualState) {
  const Cluster cluster = mini_cluster();
  const EnergyModel energy = flat_energy();
  const Task task = make_task(0, 0, 10, 1000.0, 3.0, 0.5, 12.0);
  const Schedule schedule = two_slot_schedule(task, cluster, energy);
  DualState duals(2, 10);
  duals.set_lambda(0, 2, 0.004);
  duals.set_phi(0, 1, 0.03);
  EXPECT_DOUBLE_EQ(payment(schedule, duals),
                   payment_from_prices(schedule, 0.004, 0.03));
}

}  // namespace
}  // namespace lorasched
