#include "lorasched/workload/traces.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "lorasched/util/stats.h"

namespace lorasched {
namespace {

constexpr Slot kDay = 144;

TEST(Traces, ToStringNames) {
  EXPECT_EQ(to_string(TraceKind::kMLaaS), "MLaaS");
  EXPECT_EQ(to_string(TraceKind::kPhilly), "Philly");
  EXPECT_EQ(to_string(TraceKind::kHelios), "Helios");
}

class TraceKindTest : public ::testing::TestWithParam<TraceKind> {};

TEST_P(TraceKindTest, MeanNormalizedToBaseRate) {
  const auto rates = trace_rates(GetParam(), kDay, 5.0, 42);
  ASSERT_EQ(rates.size(), static_cast<std::size_t>(kDay));
  EXPECT_NEAR(util::mean(rates), 5.0, 1e-9);
}

TEST_P(TraceKindTest, RatesNonNegative) {
  const auto rates = trace_rates(GetParam(), kDay, 3.0, 7);
  for (double r : rates) EXPECT_GE(r, 0.0);
}

TEST_P(TraceKindTest, DeterministicInSeed) {
  const auto a = trace_rates(GetParam(), kDay, 4.0, 99);
  const auto b = trace_rates(GetParam(), kDay, 4.0, 99);
  EXPECT_EQ(a, b);
}

TEST_P(TraceKindTest, DifferentSeedsVary) {
  const auto a = trace_rates(GetParam(), kDay, 4.0, 1);
  const auto b = trace_rates(GetParam(), kDay, 4.0, 2);
  EXPECT_NE(a, b);
}

INSTANTIATE_TEST_SUITE_P(AllTraces, TraceKindTest,
                         ::testing::Values(TraceKind::kMLaaS,
                                           TraceKind::kPhilly,
                                           TraceKind::kHelios),
                         [](const auto& info) { return to_string(info.param); });

TEST(Traces, PhillyPeaksDuringBusinessHours) {
  const auto rates = trace_rates(TraceKind::kPhilly, kDay, 5.0, 42);
  // Slot 60 ~ 10:00, slot 18 ~ 03:00.
  EXPECT_GT(rates[60], 2.0 * rates[18]);
}

TEST(Traces, MLaaSIsMildlyDiurnal) {
  const auto rates = trace_rates(TraceKind::kMLaaS, kDay, 5.0, 42);
  const double hi = *std::max_element(rates.begin(), rates.end());
  const double lo = *std::min_element(rates.begin(), rates.end());
  EXPECT_LT(hi / lo, 3.0);  // much flatter than Philly
  EXPECT_GT(hi / lo, 1.05);
}

TEST(Traces, HeliosHasBursts) {
  const auto rates = trace_rates(TraceKind::kHelios, kDay, 5.0, 42);
  const double m = util::mean(rates);
  const double peak = *std::max_element(rates.begin(), rates.end());
  EXPECT_GT(peak, 2.5 * m);  // spiky by construction
}

TEST(Traces, RejectsBadArguments) {
  EXPECT_THROW(trace_rates(TraceKind::kMLaaS, 0, 5.0, 1),
               std::invalid_argument);
  EXPECT_THROW(trace_rates(TraceKind::kMLaaS, kDay, -1.0, 1),
               std::invalid_argument);
}

TEST(Traces, ShortHorizonsWork) {
  const auto rates = trace_rates(TraceKind::kPhilly, 12, 2.0, 5);
  EXPECT_EQ(rates.size(), 12u);
  EXPECT_NEAR(util::mean(rates), 2.0, 1e-9);
}

}  // namespace
}  // namespace lorasched
