// The paper-invariant audit layer (audit/audit.h, DESIGN.md §9).
//
// Two halves:
//
//  * Golden decision-fingerprint regressions over a 529-bid scenario. The
//    fingerprint folds every outcome (admission flag, exact payment bit
//    pattern, completion, vendor) and every schedule cell, so ANY drift in
//    the decision pipeline changes it. The pinned values were captured from
//    the pre-audit seed code: in a default build they prove the audit
//    refactoring left decisions bit-identical; in a -DLORASCHED_AUDIT=ON
//    build they prove the hooks observe without perturbing — while running
//    the full invariant catalogue over 500+ bids with zero violations.
//
//  * Seeded-violation coverage: every checker must reject corrupted inputs.
//    The checkers are compiled in every configuration (only the hooks are
//    gated), so these tests run with and without LORASCHED_AUDIT.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "lorasched/audit/audit.h"
#include "lorasched/audit/invariants.h"
#include "lorasched/audit/oracle.h"
#include "lorasched/cluster/capacity_ledger.h"
#include "lorasched/cluster/cluster.h"
#include "lorasched/cluster/energy.h"
#include "lorasched/cluster/gpu_profile.h"
#include "lorasched/core/duals.h"
#include "lorasched/core/pdftsp.h"
#include "lorasched/core/schedule.h"
#include "lorasched/core/schedule_dp.h"
#include "lorasched/experiments/scenario.h"
#include "lorasched/sim/engine.h"
#include "lorasched/sim/policy.h"
#include "lorasched/types.h"
#include "lorasched/workload/task.h"

namespace lorasched {
namespace {

// --- Golden fingerprint ------------------------------------------------------

void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ULL;  // FNV-1a 64-bit prime
}

std::uint64_t fingerprint(const SimResult& result) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const TaskOutcome& o = result.outcomes[i];
    mix(h, static_cast<std::uint64_t>(o.task));
    mix(h, o.admitted ? 1 : 0);
    mix(h, std::bit_cast<std::uint64_t>(o.payment));
    mix(h, static_cast<std::uint64_t>(o.completion));
    mix(h, static_cast<std::uint64_t>(o.slots_used));
    mix(h, static_cast<std::uint64_t>(o.vendor));
    const Schedule& s = result.schedules[i];
    mix(h, static_cast<std::uint64_t>(s.run.size()));
    for (const Assignment& a : s.run) {
      mix(h, static_cast<std::uint64_t>(a.node));
      mix(h, static_cast<std::uint64_t>(a.slot));
    }
  }
  return h;
}

/// A mid-size scenario: 529 bids, hybrid fleet, outages, vendors — every
/// decision path (admit / sign-reject / capacity-reject, prep / no-prep)
/// is exercised.
ScenarioConfig pin_config() {
  ScenarioConfig config;
  config.nodes = 8;
  config.fleet = FleetKind::kHybrid;
  config.horizon = 96;
  config.arrival_rate = 5.5;
  config.vendors = 4;
  config.prep_probability = 0.4;
  config.outages = 2;
  config.seed = 2024;
  return config;
}

/// Resets the auditor's counters around a test and restores its config.
class AuditorGuard {
 public:
  AuditorGuard() : saved_(audit::Auditor::instance().config()) {
    audit::Auditor::instance().reset();
  }
  ~AuditorGuard() {
    audit::Auditor::instance().config() = saved_;
    audit::Auditor::instance().reset();
  }

 private:
  audit::AuditConfig saved_;
};

TEST(GoldenDecisions, PlainPolicyPinnedToPreAuditSeed) {
  AuditorGuard guard;
  const Instance instance = make_instance(pin_config());
  ASSERT_EQ(instance.tasks.size(), 529u);
  Pdftsp policy(pdftsp_config_for(instance), instance.cluster,
                instance.energy, instance.horizon);
  const SimResult result = run_simulation(instance, policy);
  EXPECT_EQ(fingerprint(result), 0xb8745db7f7c5010bULL);
  EXPECT_EQ(result.metrics.admitted, 248);
  EXPECT_EQ(result.metrics.rejected, 281);
#ifdef LORASCHED_AUDIT
  // The audit soak: 500+ bids through every hook, zero violations.
  EXPECT_GT(audit::Auditor::instance().checks(), 1000u);
  EXPECT_EQ(audit::Auditor::instance().violations(), 0u);
#endif
}

TEST(GoldenDecisions, ShareAdaptationPinnedToPreAuditSeed) {
  AuditorGuard guard;
  const Instance instance = make_instance(pin_config());
  PdftspConfig config = pdftsp_config_for(instance);
  config.share_options = {0.25, 0.5, 1.0};
  Pdftsp policy(config, instance.cluster, instance.energy, instance.horizon);
  const SimResult result = run_simulation(instance, policy);
  EXPECT_EQ(fingerprint(result), 0x77281649b22a6d0fULL);
  EXPECT_EQ(result.metrics.admitted, 250);
  EXPECT_EQ(result.metrics.rejected, 279);
#ifdef LORASCHED_AUDIT
  EXPECT_EQ(audit::Auditor::instance().violations(), 0u);
#endif
}

// The price-epoch cache, scratch arenas, and parallel candidate evaluation
// (DESIGN.md §5) must not move a single decision or payment bit: every arm
// of the hot-path overhaul pins to the SAME constants as the seed path
// above.

TEST(GoldenDecisions, LegacyUncachedPathPinnedToSameSeed) {
  AuditorGuard guard;
  const Instance instance = make_instance(pin_config());
  PdftspConfig config = pdftsp_config_for(instance);
  config.dp.price_cache = false;  // the pre-overhaul per-call path
  Pdftsp policy(config, instance.cluster, instance.energy, instance.horizon);
  const SimResult result = run_simulation(instance, policy);
  EXPECT_EQ(fingerprint(result), 0xb8745db7f7c5010bULL);
  EXPECT_EQ(result.metrics.admitted, 248);
  EXPECT_EQ(result.metrics.rejected, 281);
}

TEST(GoldenDecisions, ParallelCandidatesPinnedToSameSeed) {
  AuditorGuard guard;
  const Instance instance = make_instance(pin_config());
  PdftspConfig config = pdftsp_config_for(instance);
  config.share_options = {0.25, 0.5, 1.0};  // widen the candidate fan-out
  config.parallel_candidates = 4;
  Pdftsp policy(config, instance.cluster, instance.energy, instance.horizon);
  const SimResult result = run_simulation(instance, policy);
  EXPECT_EQ(fingerprint(result), 0x77281649b22a6d0fULL);
  EXPECT_EQ(result.metrics.admitted, 250);
  EXPECT_EQ(result.metrics.rejected, 279);
}

// --- Shared fixtures for seeded violations -----------------------------------

Cluster small_cluster() {
  GpuProfile fast;
  fast.name = "audit-fast";
  fast.compute_per_slot = 40.0;
  fast.mem_gb = 80.0;
  fast.power_kw = 0.4;
  fast.hourly_cost = 1.5;
  GpuProfile slow;
  slow.name = "audit-slow";
  slow.compute_per_slot = 24.0;
  slow.mem_gb = 48.0;
  slow.power_kw = 0.3;
  slow.hourly_cost = 0.8;
  return Cluster({fast, slow}, 10.0);
}

Task small_task() {
  Task t;
  t.id = 11;
  t.arrival = 0;
  t.deadline = 3;
  t.work = 30.0;
  t.mem_gb = 2.0;
  t.compute_share = 0.5;
  t.bid = 5.0;
  t.true_value = 5.0;
  return t;
}

// --- Outcome accounting ------------------------------------------------------

TEST(AuditChecks, AdmittedDecisionNeedsASchedule) {
  AuditorGuard guard;
  const Task t = small_task();
  Decision d;
  d.task = t.id;
  d.admit = true;  // but the schedule is empty
  d.payment = 1.0;
  EXPECT_THROW(audit::check_outcome_accounting(t, d),
               audit::InvariantViolation);
}

TEST(AuditChecks, RejectedDecisionMustChargeNothing) {
  AuditorGuard guard;
  const Task t = small_task();
  Decision d;
  d.task = t.id;
  d.admit = false;
  d.payment = 2.0;
  EXPECT_THROW(audit::check_outcome_accounting(t, d),
               audit::InvariantViolation);
}

TEST(AuditChecks, CountOnlyModeSurveysWithoutThrowing) {
  AuditorGuard guard;
  audit::Auditor::instance().config().fail_fast = false;
  const Task t = small_task();
  Decision d;
  d.task = t.id;
  d.admit = false;
  d.payment = 2.0;
  EXPECT_NO_THROW(audit::check_outcome_accounting(t, d));
  EXPECT_EQ(audit::Auditor::instance().violations(), 1u);
}

// --- Ledger invariants -------------------------------------------------------

TEST(AuditChecks, LedgerTotalsDetectDrift) {
  AuditorGuard guard;
  const Cluster cluster = small_cluster();
  CapacityLedger ledger(cluster, 4);
  EXPECT_NO_THROW(audit::check_ledger_totals(ledger, 0.0));
  ledger.reserve(0, 0, 10.0, 2.0);
  EXPECT_NO_THROW(audit::check_ledger_totals(ledger, 10.0));
  // A policy that books without admitting (or vice versa) shows up as a
  // mismatch between the ledger and the admitted-compute running sum.
  EXPECT_THROW(audit::check_ledger_totals(ledger, 0.0),
               audit::InvariantViolation);
}

TEST(AuditChecks, LedgerRestoreDetectsCorruption) {
  AuditorGuard guard;
  const Cluster cluster = small_cluster();
  CapacityLedger ledger(cluster, 4);
  ledger.reserve(0, 1, 5.0, 1.0);
  CapacityLedger::Snapshot snapshot = ledger.snapshot();
  EXPECT_NO_THROW(audit::check_ledger_restore(ledger, snapshot));
  snapshot.used_compute[1] += 1.0;  // cell (node 0, slot 1)
  EXPECT_THROW(audit::check_ledger_restore(ledger, snapshot),
               audit::InvariantViolation);
}

// --- Dual update (eq. 7/8) ---------------------------------------------------

class DualUpdateAudit : public ::testing::Test {
 protected:
  void SetUp() override {
    task_ = small_task();
    schedule_.task = task_.id;
    schedule_.run = {{0, 0}, {0, 1}};  // node 0 only
    finalize_schedule(schedule_, task_, cluster_, energy_);
    pre_lambda_ = duals_.lambda_values();
    pre_phi_ = duals_.phi_values();
    duals_.apply_update(task_, schedule_, cluster_, /*alpha=*/0.5,
                        /*beta=*/0.5, /*welfare_unit=*/1.0);
  }

  AuditorGuard guard_;
  Cluster cluster_ = small_cluster();
  EnergyModel energy_;
  DualState duals_{2, 4};
  Task task_;
  Schedule schedule_;
  std::vector<double> pre_lambda_;
  std::vector<double> pre_phi_;
};

TEST_F(DualUpdateAudit, FaithfulUpdatePasses) {
  EXPECT_NO_THROW(audit::check_dual_update(task_, schedule_, cluster_,
                                           pre_lambda_, pre_phi_, duals_, 0.5,
                                           0.5, 1.0));
}

TEST_F(DualUpdateAudit, TamperedTouchedCellDetected) {
  duals_.set_lambda(0, 0, duals_.lambda(0, 0) * 0.5);
  EXPECT_THROW(audit::check_dual_update(task_, schedule_, cluster_,
                                        pre_lambda_, pre_phi_, duals_, 0.5,
                                        0.5, 1.0),
               audit::InvariantViolation);
}

TEST_F(DualUpdateAudit, TamperedUntouchedCellDetected) {
  // Node 1 is not in the run: even a tiny perturbation must be caught —
  // untouched cells are required bit-identical, not merely close.
  duals_.set_lambda(1, 2, 1e-12);
  EXPECT_THROW(audit::check_dual_update(task_, schedule_, cluster_,
                                        pre_lambda_, pre_phi_, duals_, 0.5,
                                        0.5, 1.0),
               audit::InvariantViolation);
}

TEST_F(DualUpdateAudit, WrongPricingConstantsDetected) {
  // The same grids replayed under a different alpha no longer match.
  EXPECT_THROW(audit::check_dual_update(task_, schedule_, cluster_,
                                        pre_lambda_, pre_phi_, duals_, 0.9,
                                        0.5, 1.0),
               audit::InvariantViolation);
}

// --- Decision consistency (eq. 10 / eq. 14 / Thm. 4) -------------------------

TEST(AuditChecks, DecisionAuditRejectsAdmissionWithoutCandidate) {
  AuditorGuard guard;
  const Cluster cluster = small_cluster();
  const Task t = small_task();
  const Schedule empty;
  const CapacityLedger ledger(cluster, 4);
  const std::vector<double> zeros(2 * 4, 0.0);
  const audit::DecisionAudit a{t,     empty, 0.0,   1.0, true,
                               false, zeros, zeros, ledger};
  EXPECT_THROW(audit::check_decision(a, cluster), audit::InvariantViolation);
}

TEST(AuditChecks, DecisionAuditRejectsOverpayment) {
  AuditorGuard guard;
  const Cluster cluster = small_cluster();
  const EnergyModel energy;
  const Task t = small_task();
  Schedule s;
  s.task = t.id;
  s.run = {{0, 0}, {0, 1}};
  finalize_schedule(s, t, cluster, energy);
  const DualState duals(2, 4);  // all-zero prices
  const double objective = objective_value(s, duals);
  ASSERT_GT(objective, 0.0);
  const CapacityLedger ledger(cluster, 4);
  // Payment above the bid violates individual rationality (Thm. 4) and
  // cannot equal the eq. (14) recomputation either.
  const audit::DecisionAudit a{t,
                               s,
                               objective,
                               t.bid + 1.0,
                               true,
                               false,
                               duals.lambda_values(),
                               duals.phi_values(),
                               ledger};
  EXPECT_THROW(audit::check_decision(a, cluster), audit::InvariantViolation);
}

// --- Algorithm 2 vs brute-force oracle ---------------------------------------

class DpOracleAudit : public ::testing::Test {
 protected:
  void SetUp() override {
    task_ = small_task();
    // Non-uniform prices so the optimum is non-trivial.
    for (NodeId k = 0; k < 2; ++k) {
      for (Slot t = 0; t < 4; ++t) {
        duals_.set_lambda(k, t, 0.05 * static_cast<double>(k + 2 * t));
        duals_.set_phi(k, t, 0.01 * static_cast<double>(3 - t));
      }
    }
  }

  AuditorGuard guard_;
  Cluster cluster_ = small_cluster();
  EnergyModel energy_;
  DualState duals_{2, 4};
  Task task_;
  ScheduleDpConfig config_{};
};

TEST_F(DpOracleAudit, DpAgreesWithOracleOnSmallInstance) {
  const ScheduleDp dp(cluster_, energy_, config_);
  const Schedule found = dp.find(task_, 0, duals_);
  ASSERT_FALSE(found.empty());
  audit::check_dp_schedule(task_, 0, duals_, cluster_, energy_, config_,
                           nullptr, nullptr, found);
  EXPECT_GT(audit::Auditor::instance().checks(), 0u);
  EXPECT_EQ(audit::Auditor::instance().violations(), 0u);
  EXPECT_EQ(audit::Auditor::instance().oracle_skipped(), 0u);
}

TEST_F(DpOracleAudit, FabricatedInfeasibilityConvicted) {
  // The instance is feasible (previous test): claiming the DP found nothing
  // must be refuted by the oracle.
  const Schedule empty;
  EXPECT_THROW(audit::check_dp_schedule(task_, 0, duals_, cluster_, energy_,
                                        config_, nullptr, nullptr, empty),
               audit::InvariantViolation);
}

TEST_F(DpOracleAudit, OversizedInstanceSkipsAndCounts) {
  audit::Auditor::instance().config().oracle_max_combinations = 2;
  const ScheduleDp dp(cluster_, energy_, config_);
  const Schedule found = dp.find(task_, 0, duals_);
  audit::check_dp_schedule(task_, 0, duals_, cluster_, energy_, config_,
                           nullptr, nullptr, found);
  EXPECT_GT(audit::Auditor::instance().oracle_skipped(), 0u);
  EXPECT_EQ(audit::Auditor::instance().violations(), 0u);
}

TEST_F(DpOracleAudit, OracleCostMatchesDpObjectiveTerms) {
  bool skipped = false;
  const std::optional<double> best = audit::oracle_best_cost(
      task_, 0, duals_, cluster_, energy_, config_, nullptr, nullptr,
      50'000, &skipped);
  ASSERT_FALSE(skipped);
  ASSERT_TRUE(best.has_value());
  EXPECT_GE(*best, 0.0);
}

}  // namespace
}  // namespace lorasched
