// Tests for the CSV tokenizer and workload/result serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "lorasched/io/csv.h"
#include "lorasched/io/serialize.h"
#include "lorasched/sim/engine.h"
#include "test_helpers.h"

namespace lorasched::io {
namespace {

TEST(Csv, ParsePlainFields) {
  const auto fields = parse_csv_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(Csv, ParseQuotedFieldsWithCommasAndQuotes) {
  const auto fields = parse_csv_line(R"(x,"hello, ""world""",y)");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "hello, \"world\"");
}

TEST(Csv, ParseEmptyFields) {
  const auto fields = parse_csv_line(",,");
  ASSERT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_TRUE(f.empty());
}

TEST(Csv, ParseRejectsMalformedQuotes) {
  EXPECT_THROW(parse_csv_line(R"(ab"cd)"), std::invalid_argument);
  EXPECT_THROW(parse_csv_line(R"("unterminated)"), std::invalid_argument);
}

TEST(Csv, FormatQuotesOnlyWhenNeeded) {
  EXPECT_EQ(format_csv_line({"a", "b"}), "a,b");
  EXPECT_EQ(format_csv_line({"a,b"}), "\"a,b\"");
  EXPECT_EQ(format_csv_line({"say \"hi\""}), "\"say \"\"hi\"\"\"");
}

TEST(Csv, RoundTripThroughStreams) {
  const std::vector<std::vector<std::string>> records{
      {"h1", "h2"}, {"plain", "with, comma"}, {"\"q\"", ""}};
  std::stringstream buffer;
  write_csv(buffer, records);
  EXPECT_EQ(read_csv(buffer), records);
}

TEST(Csv, ReadSkipsBlankAndHandlesCrlf) {
  std::stringstream buffer("a,b\r\n\r\nc,d\n");
  const auto records = read_csv(buffer);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1][1], "d");
}

TEST(Serialize, TasksRoundTripExactly) {
  const Instance instance = make_instance(testing::small_scenario(33));
  ASSERT_FALSE(instance.tasks.empty());
  std::stringstream buffer;
  write_tasks_csv(buffer, instance.tasks);
  const std::vector<Task> loaded = read_tasks_csv(buffer);
  ASSERT_EQ(loaded.size(), instance.tasks.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    const Task& a = instance.tasks[i];
    const Task& b = loaded[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.arrival, b.arrival);
    EXPECT_EQ(a.deadline, b.deadline);
    EXPECT_DOUBLE_EQ(a.dataset_samples, b.dataset_samples);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_DOUBLE_EQ(a.work, b.work);
    EXPECT_DOUBLE_EQ(a.mem_gb, b.mem_gb);
    EXPECT_DOUBLE_EQ(a.compute_share, b.compute_share);
    EXPECT_EQ(a.needs_prep, b.needs_prep);
    EXPECT_EQ(a.model, b.model);
    EXPECT_DOUBLE_EQ(a.bid, b.bid);
    EXPECT_DOUBLE_EQ(a.true_value, b.true_value);
  }
}

TEST(Serialize, TasksRejectBadHeader) {
  std::stringstream buffer("id,arrival\n1,2\n");
  EXPECT_THROW((void)read_tasks_csv(buffer), std::invalid_argument);
}

TEST(Serialize, TasksRejectBadNumbers) {
  const Task task = testing::make_task(0, 0, 5, 100.0);
  std::stringstream good;
  write_tasks_csv(good, {task});
  std::string text = good.str();
  // Corrupt the bid column.
  const auto pos = text.rfind("100");
  text.replace(pos, 3, "1x0");
  std::stringstream bad(text);
  EXPECT_THROW((void)read_tasks_csv(bad), std::invalid_argument);
}

TEST(Serialize, OutcomesCsvHasHeaderAndRows) {
  TaskOutcome outcome;
  outcome.task = 3;
  outcome.admitted = true;
  outcome.bid = 1.5;
  outcome.payment = 0.75;
  std::stringstream buffer;
  write_outcomes_csv(buffer, {outcome});
  const auto records = read_csv(buffer);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0][0], "task");
  EXPECT_EQ(records[1][0], "3");
  EXPECT_EQ(records[1][1], "1");
}

TEST(Serialize, ScenarioRoundTrip) {
  ScenarioConfig config;
  config.nodes = 17;
  config.fleet = FleetKind::kA40Only;
  config.horizon = 99;
  config.arrival_rate = 3.25;
  config.trace = TraceKind::kPhilly;
  config.deadline = DeadlineKind::kSlack;
  config.vendors = 9;
  config.prep_probability = 0.55;
  config.base_model_gb = 7.5;
  config.seed = 123456;
  std::stringstream buffer;
  write_scenario(buffer, config);
  const ScenarioConfig loaded = read_scenario(buffer);
  EXPECT_EQ(loaded.nodes, 17);
  EXPECT_EQ(loaded.fleet, FleetKind::kA40Only);
  EXPECT_EQ(loaded.horizon, 99);
  EXPECT_DOUBLE_EQ(loaded.arrival_rate, 3.25);
  ASSERT_TRUE(loaded.trace.has_value());
  EXPECT_EQ(*loaded.trace, TraceKind::kPhilly);
  EXPECT_EQ(loaded.deadline, DeadlineKind::kSlack);
  EXPECT_EQ(loaded.vendors, 9);
  EXPECT_DOUBLE_EQ(loaded.prep_probability, 0.55);
  EXPECT_DOUBLE_EQ(loaded.base_model_gb, 7.5);
  EXPECT_EQ(loaded.seed, 123456u);
}

TEST(Serialize, ScenarioWithoutTraceStaysPoisson) {
  ScenarioConfig config;
  std::stringstream buffer;
  write_scenario(buffer, config);
  const ScenarioConfig loaded = read_scenario(buffer);
  EXPECT_FALSE(loaded.trace.has_value());
}

TEST(Serialize, ScenarioRejectsUnknownKeysAndValues) {
  std::stringstream unknown_key("wat = 1\n");
  EXPECT_THROW((void)read_scenario(unknown_key), std::invalid_argument);
  std::stringstream bad_fleet("fleet = H200\n");
  EXPECT_THROW((void)read_scenario(bad_fleet), std::invalid_argument);
  std::stringstream no_equals("nodes 5\n");
  EXPECT_THROW((void)read_scenario(no_equals), std::invalid_argument);
}

TEST(Serialize, ScenarioSkipsComments) {
  std::stringstream buffer("# a comment\nnodes = 3\n");
  EXPECT_EQ(read_scenario(buffer).nodes, 3);
}

TEST(Serialize, BidLinesRoundTripExactly) {
  const Instance instance = make_instance(testing::small_scenario(21));
  ASSERT_FALSE(instance.tasks.empty());
  for (const Task& task : instance.tasks) {
    const Task parsed = parse_bid_line(format_bid_line(task));
    EXPECT_EQ(parsed.id, task.id);
    EXPECT_EQ(parsed.arrival, task.arrival);
    EXPECT_EQ(parsed.deadline, task.deadline);
    EXPECT_EQ(parsed.work, task.work);
    EXPECT_EQ(parsed.mem_gb, task.mem_gb);
    EXPECT_EQ(parsed.compute_share, task.compute_share);
    EXPECT_EQ(parsed.bid, task.bid);
    EXPECT_EQ(parsed.true_value, task.true_value);
    EXPECT_EQ(parsed.needs_prep, task.needs_prep);
  }
}

TEST(Serialize, BidLineRejectsGarbage) {
  EXPECT_THROW((void)parse_bid_line("not,a,bid"), std::invalid_argument);
  EXPECT_THROW((void)parse_bid_line(""), std::invalid_argument);
}

TEST(Serialize, ReplayedTasksProduceIdenticalAuction) {
  // Export, reload, and re-run: the auction outcome must be identical —
  // the serialization is faithful enough for replay experiments.
  const Instance original = make_instance(testing::small_scenario(35));
  std::stringstream buffer;
  write_tasks_csv(buffer, original.tasks);
  Instance replay = original;
  replay.tasks = read_tasks_csv(buffer);

  Pdftsp policy_a(pdftsp_config_for(original), original.cluster,
                  original.energy, original.horizon);
  Pdftsp policy_b(pdftsp_config_for(replay), replay.cluster, replay.energy,
                  replay.horizon);
  const SimResult a = run_simulation(original, policy_a);
  const SimResult b = run_simulation(replay, policy_b);
  EXPECT_DOUBLE_EQ(a.metrics.social_welfare, b.metrics.social_welfare);
  EXPECT_EQ(a.metrics.admitted, b.metrics.admitted);
}

// Checkpoint streams open with a "<magic> <version>" header; the two
// failure modes must be told apart: a foreign file is "not a checkpoint"
// while a version skew names both versions so the operator knows which
// side to upgrade.
TEST(Serialize, CheckpointRejectsForeignMagicWithClearError) {
  std::istringstream garbage("some-other-format 3\n");
  try {
    (void)read_checkpoint(garbage);
    FAIL() << "foreign magic must be rejected";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("not a checkpoint stream"), std::string::npos) << what;
    EXPECT_NE(what.find("lorasched-checkpoint"), std::string::npos) << what;
    EXPECT_NE(what.find("some-other-format"), std::string::npos) << what;
  }
}

TEST(Serialize, CheckpointNamesBothVersionsOnSkew) {
  std::ostringstream out;
  write_checkpoint(out, service::Checkpoint{});
  std::string bytes = out.str();
  const std::string header = "lorasched-checkpoint 1";
  ASSERT_EQ(bytes.rfind(header, 0), 0u);  // writer emits the v1 header
  bytes.replace(0, header.size(), "lorasched-checkpoint 99");
  std::istringstream in(bytes);
  try {
    (void)read_checkpoint(in);
    FAIL() << "version skew must be rejected";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version 99"), std::string::npos) << what;
    EXPECT_NE(what.find("reads version 1"), std::string::npos) << what;
  }
}

TEST(Serialize, ShardedCheckpointHeaderIsValidatedToo) {
  // The sharded magic embeds the plain one as a prefix-free superset;
  // feeding a plain checkpoint to the sharded reader must name the
  // expected magic rather than mis-parse.
  std::istringstream plain("lorasched-checkpoint 1\n");
  try {
    (void)read_sharded_checkpoint(plain);
    FAIL() << "plain checkpoint fed to sharded reader must be rejected";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("not a sharded checkpoint stream"), std::string::npos)
        << what;
    EXPECT_NE(what.find("lorasched-sharded-checkpoint"), std::string::npos)
        << what;
  }

  std::istringstream skew("lorasched-sharded-checkpoint 7\n");
  try {
    (void)read_sharded_checkpoint(skew);
    FAIL() << "sharded version skew must be rejected";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version 7"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace lorasched::io
