// Randomized property suites for the solver stack: primal feasibility,
// complementary slackness and strong duality of the simplex on random
// packing LPs; branch & bound vs. exhaustive enumeration on random 0/1
// programs; bound sandwiching in column generation.
#include <gtest/gtest.h>

#include <cmath>

#include "lorasched/solver/bnb.h"
#include "lorasched/solver/simplex.h"
#include "lorasched/util/rng.h"

namespace lorasched::solver {
namespace {

LpProblem random_packing_lp(util::Rng& rng, int vars, int rows,
                            double density) {
  LpProblem lp;
  for (int j = 0; j < vars; ++j) lp.objective.push_back(rng.uniform(0.5, 5.0));
  for (int i = 0; i < rows; ++i) {
    LpProblem::Row row;
    for (int j = 0; j < vars; ++j) {
      if (rng.uniform() < density) {
        row.coeffs.emplace_back(j, rng.uniform(0.1, 2.0));
      }
    }
    row.rhs = rng.uniform(1.0, 5.0);
    lp.rows.push_back(std::move(row));
  }
  for (int j = 0; j < vars; ++j) lp.add_row({{j, 1.0}}, 1.0);  // x <= 1
  return lp;
}

class SimplexFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexFuzz, PrimalFeasibleAtOptimum) {
  util::Rng rng(GetParam());
  const LpProblem lp = random_packing_lp(rng, 24, 14, 0.35);
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  for (const auto& row : lp.rows) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : row.coeffs) {
      lhs += coeff * sol.x[static_cast<std::size_t>(var)];
    }
    EXPECT_LE(lhs, row.rhs + 1e-6);
  }
  for (double x : sol.x) EXPECT_GE(x, -1e-9);
}

TEST_P(SimplexFuzz, StrongDualityHolds) {
  util::Rng rng(GetParam() ^ 0xduLL);
  const LpProblem lp = random_packing_lp(rng, 20, 12, 0.4);
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  double dual_obj = 0.0;
  for (int i = 0; i < lp.num_rows(); ++i) {
    dual_obj += lp.rows[static_cast<std::size_t>(i)].rhs *
                sol.duals[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(dual_obj, sol.objective, 1e-6 * std::max(1.0, sol.objective));
}

TEST_P(SimplexFuzz, DualFeasibility) {
  // yᵀA >= c for every variable (dual constraint of the packing LP).
  util::Rng rng(GetParam() ^ 0xfeedULL);
  const LpProblem lp = random_packing_lp(rng, 18, 10, 0.4);
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  std::vector<double> column_price(static_cast<std::size_t>(lp.num_vars()),
                                   0.0);
  for (int i = 0; i < lp.num_rows(); ++i) {
    for (const auto& [var, coeff] : lp.rows[static_cast<std::size_t>(i)].coeffs) {
      column_price[static_cast<std::size_t>(var)] +=
          coeff * sol.duals[static_cast<std::size_t>(i)];
    }
  }
  for (int j = 0; j < lp.num_vars(); ++j) {
    EXPECT_GE(column_price[static_cast<std::size_t>(j)] + 1e-6,
              lp.objective[static_cast<std::size_t>(j)])
        << "dual constraint violated at variable " << j;
  }
}

TEST_P(SimplexFuzz, ComplementarySlackness) {
  util::Rng rng(GetParam() ^ 0xc0ffeeULL);
  const LpProblem lp = random_packing_lp(rng, 16, 10, 0.4);
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  for (int i = 0; i < lp.num_rows(); ++i) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : lp.rows[static_cast<std::size_t>(i)].coeffs) {
      lhs += coeff * sol.x[static_cast<std::size_t>(var)];
    }
    const double slack = lp.rows[static_cast<std::size_t>(i)].rhs - lhs;
    // y_i * slack_i = 0 at an optimal pair.
    EXPECT_NEAR(sol.duals[static_cast<std::size_t>(i)] * slack, 0.0, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexFuzz,
                         ::testing::Values(101ull, 202ull, 303ull, 404ull,
                                           505ull, 606ull));

class BnbFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BnbFuzz, MatchesBruteForceOnRandomPrograms) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 10;
    MilpProblem milp;
    for (int j = 0; j < n; ++j) {
      milp.lp.objective.push_back(rng.uniform(0.5, 6.0));
      milp.binary_vars.push_back(j);
    }
    const int rows = static_cast<int>(rng.uniform_int(2, 5));
    for (int i = 0; i < rows; ++i) {
      LpProblem::Row row;
      for (int j = 0; j < n; ++j) {
        if (rng.uniform() < 0.5) row.coeffs.emplace_back(j, rng.uniform(0.2, 1.5));
      }
      row.rhs = rng.uniform(0.8, 3.0);
      if (!row.coeffs.empty()) milp.lp.rows.push_back(std::move(row));
    }

    double brute = 0.0;
    for (int mask = 0; mask < (1 << n); ++mask) {
      bool ok = true;
      for (const auto& row : milp.lp.rows) {
        double lhs = 0.0;
        for (const auto& [var, coeff] : row.coeffs) {
          if (mask & (1 << var)) lhs += coeff;
        }
        if (lhs > row.rhs + 1e-9) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      double value = 0.0;
      for (int j = 0; j < n; ++j) {
        if (mask & (1 << j)) value += milp.lp.objective[static_cast<std::size_t>(j)];
      }
      brute = std::max(brute, value);
    }

    const MilpSolution sol = solve_milp(milp);
    ASSERT_TRUE(sol.found_incumbent) << "trial " << trial;
    EXPECT_TRUE(sol.proved_optimal) << "trial " << trial;
    EXPECT_NEAR(sol.objective, brute, 1e-6) << "trial " << trial;
    EXPECT_GE(sol.root_bound + 1e-6, sol.objective) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbFuzz,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull));

}  // namespace
}  // namespace lorasched::solver
