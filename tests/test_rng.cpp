#include "lorasched/util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace lorasched::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, SubstreamIndependentOfParentState) {
  Rng parent(99);
  const Rng sub_before = parent.substream(5);
  (void)parent.next();
  const Rng sub_after = parent.substream(5);
  Rng x = sub_before;
  Rng y = sub_after;
  for (int i = 0; i < 20; ++i) EXPECT_EQ(x.next(), y.next());
}

TEST(Rng, SubstreamsDecorrelated) {
  Rng parent(99);
  Rng s0 = parent.substream(0);
  Rng s1 = parent.substream(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += s0.next() == s1.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 2.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 2.0);
  }
}

TEST(Rng, UniformIntInclusiveAndCoversRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 6);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, PoissonMeanMatchesSmallRate) {
  Rng rng(12);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.poisson(3.5);
  EXPECT_NEAR(total / n, 3.5, 0.1);
}

TEST(Rng, PoissonMeanMatchesLargeRate) {
  Rng rng(13);
  double total = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) total += rng.poisson(80.0);
  EXPECT_NEAR(total / n, 80.0, 1.0);
}

TEST(Rng, PoissonZeroRate) {
  Rng rng(14);
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_EQ(rng.poisson(-1.0), 0);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(15);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.exponential(0.5);
  EXPECT_NEAR(total / n, 2.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(16);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, WeightedIndexProportional) {
  Rng rng(17);
  std::vector<double> weights{1.0, 3.0};
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ones += rng.weighted_index(weights) == 1;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexZeroWeightsFallsBack) {
  Rng rng(18);
  std::vector<double> weights{0.0, 0.0};
  EXPECT_EQ(rng.weighted_index(weights), 0u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7};
  auto shuffled = items;
  rng.shuffle(shuffled);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(Splitmix, KnownProgressionIsDeterministic) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace lorasched::util
