// Tests for Algorithm 2's findSchedule DP (eq. 12/13), including an
// exhaustive brute-force cross-check on tiny instances.
#include "lorasched/core/schedule_dp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "test_helpers.h"

namespace lorasched {
namespace {

using testing::flat_energy;
using testing::hetero_cluster;
using testing::make_task;
using testing::mini_cluster;

/// Additive DP objective of a schedule: Σ (s̃ λ + r̃ φ + e) over the run,
/// in the capacity-normalized units the dual state uses.
double plan_cost(const Schedule& schedule, const Task& task,
                 const Cluster& cluster, const EnergyModel& energy,
                 const DualState& duals) {
  double cost = 0.0;
  for (const Assignment& a : schedule.run) {
    const double s_norm =
        cluster.task_rate(task, a.node) / cluster.compute_capacity(a.node);
    const double r_norm = task.mem_gb / cluster.adapter_mem_capacity(a.node);
    cost += s_norm * duals.lambda(a.node, a.slot) +
            r_norm * duals.phi(a.node, a.slot) +
            energy.cost(task, cluster, a.node, a.slot);
  }
  return cost;
}

/// Brute force over all subsets of (slot -> node | skip) choices.
double brute_force_cost(const Task& task, Slot start, const Cluster& cluster,
                        const EnergyModel& energy, const DualState& duals) {
  const Slot window = task.deadline - start + 1;
  const int nodes = cluster.node_count();
  const int choices = nodes + 1;  // per slot: a node or skip
  double best = std::numeric_limits<double>::infinity();
  long combos = 1;
  for (Slot i = 0; i < window; ++i) combos *= choices;
  for (long mask = 0; mask < combos; ++mask) {
    long m = mask;
    double work = 0.0;
    double cost = 0.0;
    for (Slot rel = 0; rel < window; ++rel) {
      const int choice = static_cast<int>(m % choices);
      m /= choices;
      if (choice == nodes) continue;  // skip
      const Slot t = start + rel;
      const NodeId k = choice;
      work += cluster.task_rate(task, k);
      const double s_norm =
          cluster.task_rate(task, k) / cluster.compute_capacity(k);
      const double r_norm = task.mem_gb / cluster.adapter_mem_capacity(k);
      cost += s_norm * duals.lambda(k, t) + r_norm * duals.phi(k, t) +
              energy.cost(task, cluster, k, t);
    }
    if (work + 1e-9 >= task.work) best = std::min(best, cost);
  }
  return best;
}

TEST(ScheduleDp, FindsFeasiblePlanCoveringWork) {
  const Cluster cluster = mini_cluster();
  const EnergyModel energy = flat_energy();
  const ScheduleDp dp(cluster, energy);
  const DualState duals(2, 20);
  const Task task = make_task(0, 2, 10, 1800.0, 2.0, 0.5);  // rate 500/slot
  const Schedule schedule = dp.find(task, 2, duals);
  ASSERT_FALSE(schedule.empty());
  double work = 0.0;
  for (const Assignment& a : schedule.run) {
    EXPECT_GE(a.slot, 2);
    EXPECT_LE(a.slot, 10);
    work += cluster.task_rate(task, a.node);
  }
  EXPECT_GE(work, task.work);
}

TEST(ScheduleDp, SlotsStrictlyIncreasing) {
  const Cluster cluster = mini_cluster();
  const ScheduleDp dp(cluster, flat_energy());
  const DualState duals(2, 20);
  const Task task = make_task(0, 0, 15, 3000.0, 2.0, 0.5);
  const Schedule schedule = dp.find(task, 0, duals);
  ASSERT_FALSE(schedule.empty());
  for (std::size_t i = 1; i < schedule.run.size(); ++i) {
    EXPECT_LT(schedule.run[i - 1].slot, schedule.run[i].slot);
  }
}

TEST(ScheduleDp, InfeasibleWhenWindowTooShort) {
  const Cluster cluster = mini_cluster();
  const ScheduleDp dp(cluster, flat_energy());
  const DualState duals(2, 20);
  // 3000 samples at 500/slot needs 6 slots; window has 3.
  const Task task = make_task(0, 0, 2, 3000.0, 2.0, 0.5);
  EXPECT_TRUE(dp.find(task, 0, duals).empty());
}

TEST(ScheduleDp, InfeasibleWhenStartAfterDeadline) {
  const Cluster cluster = mini_cluster();
  const ScheduleDp dp(cluster, flat_energy());
  const DualState duals(2, 20);
  const Task task = make_task(0, 0, 5, 100.0);
  EXPECT_TRUE(dp.find(task, 6, duals).empty());
}

TEST(ScheduleDp, DeadlineBeyondHorizonIsInfeasible) {
  const Cluster cluster = mini_cluster();
  const ScheduleDp dp(cluster, flat_energy());
  const DualState duals(2, 10);
  const Task task = make_task(0, 0, 25, 100.0);  // deadline past horizon 10
  EXPECT_TRUE(dp.find(task, 0, duals).empty());
}

TEST(ScheduleDp, ZeroWorkYieldsEmptyRun) {
  const Cluster cluster = mini_cluster();
  const ScheduleDp dp(cluster, flat_energy());
  const DualState duals(2, 10);
  const Task task = make_task(0, 0, 5, 0.0);
  EXPECT_TRUE(dp.find(task, 0, duals).empty());
}

TEST(ScheduleDp, PrefersCheapSlotsUnderDiurnalPrices) {
  const Cluster cluster = mini_cluster();
  EnergyModel::Config config;
  config.peak_slot = 5;
  config.slots_per_day = 20;
  const EnergyModel energy{config};
  const ScheduleDp dp(cluster, energy);
  const DualState duals(2, 20);
  // Needs 2 of 19 slots: should avoid the peak at slot 5.
  const Task task = make_task(0, 0, 18, 900.0, 2.0, 0.5);
  const Schedule schedule = dp.find(task, 0, duals);
  ASSERT_FALSE(schedule.empty());
  for (const Assignment& a : schedule.run) {
    const double gap = std::abs(a.slot - 5);
    EXPECT_GT(gap, 3) << "picked near-peak slot " << a.slot;
  }
}

TEST(ScheduleDp, AvoidsExpensiveDualCells) {
  const Cluster cluster = mini_cluster();
  const EnergyModel energy = flat_energy();
  const ScheduleDp dp(cluster, energy);
  DualState duals(2, 10);
  // Node 0 is expensive everywhere; node 1 free.
  for (Slot t = 0; t < 10; ++t) duals.set_lambda(0, t, 1.0);
  const Task task = make_task(0, 0, 9, 1500.0, 2.0, 0.5);
  const Schedule schedule = dp.find(task, 0, duals);
  ASSERT_FALSE(schedule.empty());
  for (const Assignment& a : schedule.run) EXPECT_EQ(a.node, 1);
}

TEST(ScheduleDp, UsesFastNodeWhenItIsCheaperPerUnit) {
  const Cluster cluster = hetero_cluster();
  const EnergyModel energy = flat_energy();
  const ScheduleDp dp(cluster, energy);
  const DualState duals(2, 30);
  // Tight deadline: only the fast node (rate 1000) finishes 4000 in 4 slots.
  const Task task = make_task(0, 0, 3, 4000.0, 2.0, 0.5);
  const Schedule schedule = dp.find(task, 0, duals);
  ASSERT_FALSE(schedule.empty());
  for (const Assignment& a : schedule.run) EXPECT_EQ(a.node, 0);
}

TEST(ScheduleDp, MatchesBruteForceOnTinyInstances) {
  const Cluster cluster = hetero_cluster();
  const EnergyModel energy = flat_energy();
  ScheduleDpConfig config;
  config.granularity = 8.0;  // fine quantization for a near-exact match
  const ScheduleDp dp(cluster, energy, config);

  util::Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    DualState duals(2, 8);
    for (NodeId k = 0; k < 2; ++k) {
      for (Slot t = 0; t < 8; ++t) {
        duals.set_lambda(k, t, rng.uniform(0.0, 0.002));
        duals.set_phi(k, t, rng.uniform(0.0, 0.05));
      }
    }
    // Work requiring 2-3 slots on the slow node.
    const double work = rng.uniform(800.0, 1400.0);
    const Task task = make_task(trial, 0, 6, work, 2.0, 0.5);
    const Schedule schedule = dp.find(task, 0, duals);
    const double brute = brute_force_cost(task, 0, cluster, energy, duals);
    if (schedule.empty()) {
      EXPECT_TRUE(std::isinf(brute)) << "DP missed a feasible plan";
      continue;
    }
    const double dp_cost = plan_cost(schedule, task, cluster, energy, duals);
    // Quantization can only make the DP slightly conservative, never better
    // than the true optimum.
    EXPECT_GE(dp_cost + 1e-9, brute);
    EXPECT_NEAR(dp_cost, brute, 0.35 * std::max(1e-3, brute) + 1e-4)
        << "trial " << trial;
  }
}

TEST(ScheduleDp, FilterExcludesBlockedCells) {
  const Cluster cluster = mini_cluster();
  const ScheduleDp dp(cluster, flat_energy());
  const DualState duals(2, 10);
  const Task task = make_task(0, 0, 9, 1500.0, 2.0, 0.5);
  struct Ctx {
    static bool only_node1(const void*, NodeId k, Slot) { return k == 1; }
  };
  const Schedule schedule = dp.find(task, 0, duals, nullptr, &Ctx::only_node1);
  ASSERT_FALSE(schedule.empty());
  for (const Assignment& a : schedule.run) EXPECT_EQ(a.node, 1);
}

TEST(ScheduleDp, FilterCanMakeTaskInfeasible) {
  const Cluster cluster = mini_cluster();
  const ScheduleDp dp(cluster, flat_energy());
  const DualState duals(2, 10);
  const Task task = make_task(0, 0, 9, 1500.0, 2.0, 0.5);
  struct Ctx {
    static bool nothing(const void*, NodeId, Slot) { return false; }
  };
  EXPECT_TRUE(dp.find(task, 0, duals, nullptr, &Ctx::nothing).empty());
}

TEST(ScheduleDp, QuantizationGuaranteesTrueRateFeasibility) {
  // Coarse granularity must still produce plans whose *true* rates cover
  // the work (DESIGN.md: rates rounded down).
  const Cluster cluster = hetero_cluster();
  const ScheduleDp dp(cluster, flat_energy(), ScheduleDpConfig{1.0, 64});
  const DualState duals(2, 40);
  const Task task = make_task(0, 0, 30, 7777.0, 2.0, 0.4);
  const Schedule schedule = dp.find(task, 0, duals);
  ASSERT_FALSE(schedule.empty());
  double work = 0.0;
  for (const Assignment& a : schedule.run) {
    work += cluster.task_rate(task, a.node);
  }
  EXPECT_GE(work + 1e-9, task.work);
}

TEST(ScheduleDp, MaxUnitsCapKeepsTableBounded) {
  const Cluster cluster = mini_cluster();
  const ScheduleDp dp(cluster, flat_energy(), ScheduleDpConfig{2.0, 4});
  const DualState duals(2, 40);
  const Task task = make_task(0, 0, 35, 9000.0, 2.0, 0.5);
  const Schedule schedule = dp.find(task, 0, duals);
  // With only 4 units, each unit is 2250 samples; rate 500 < unit, so the
  // per-slot progress floors to 0 units -> infeasible under the cap.
  EXPECT_TRUE(schedule.empty());
}

TEST(ScheduleDp, RejectsBadConfig) {
  const Cluster cluster = mini_cluster();
  const EnergyModel energy = flat_energy();
  EXPECT_THROW(ScheduleDp(cluster, energy, ScheduleDpConfig{0.5, 100}),
               std::invalid_argument);
  EXPECT_THROW(ScheduleDp(cluster, energy, ScheduleDpConfig{2.0, 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace lorasched
