// Shared fixtures for the lorasched test suite: small deterministic
// clusters, tasks, and instances that keep individual tests terse.
#pragma once

#include <vector>

#include "lorasched/cluster/cluster.h"
#include "lorasched/cluster/energy.h"
#include "lorasched/experiments/scenario.h"
#include "lorasched/sim/instance.h"
#include "lorasched/workload/task.h"
#include "lorasched/workload/vendor.h"

namespace lorasched::testing {

/// Two-node homogeneous mini cluster: 1000 samples/slot, 20 GB, r_b = 4 GB.
inline Cluster mini_cluster(int nodes = 2) {
  std::vector<GpuProfile> profiles;
  for (int i = 0; i < nodes; ++i) {
    profiles.push_back(GpuProfile{"mini", 1000.0, 20.0, 0.3, 1.2});
  }
  return Cluster(std::move(profiles), 4.0);
}

/// One fast + one slow node (heterogeneous classes).
inline Cluster hetero_cluster() {
  std::vector<GpuProfile> profiles{
      GpuProfile{"fast", 2000.0, 24.0, 0.4, 1.5},
      GpuProfile{"slow", 1000.0, 16.0, 0.3, 0.8},
  };
  return Cluster(std::move(profiles), 4.0);
}

/// Flat (time-invariant) energy prices simplify hand-computed expectations.
inline EnergyModel flat_energy() {
  EnergyModel::Config config;
  config.off_peak_multiplier = 1.0;
  config.peak_multiplier = 1.0;
  return EnergyModel(config);
}

/// A task with sensible defaults; callers override the fields under test.
inline Task make_task(TaskId id, Slot arrival, Slot deadline, double work,
                      double mem_gb = 2.0, double share = 0.5,
                      Money bid = 10.0) {
  Task task;
  task.id = id;
  task.arrival = arrival;
  task.deadline = deadline;
  task.dataset_samples = work;
  task.epochs = 1;
  task.work = work;
  task.mem_gb = mem_gb;
  task.compute_share = share;
  task.bid = bid;
  task.true_value = bid;
  return task;
}

/// A small end-to-end scenario that runs in well under a second.
inline ScenarioConfig small_scenario(std::uint64_t seed = 42) {
  ScenarioConfig config;
  config.nodes = 6;
  config.fleet = FleetKind::kHybrid;
  config.horizon = 48;
  config.arrival_rate = 2.0;
  config.vendors = 3;
  config.seed = seed;
  return config;
}

}  // namespace lorasched::testing
