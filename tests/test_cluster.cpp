#include "lorasched/cluster/cluster.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "lorasched/cluster/capacity_ledger.h"
#include "lorasched/cluster/gpu_profile.h"
#include "test_helpers.h"

namespace lorasched {
namespace {

using testing::make_task;
using testing::mini_cluster;

TEST(GpuProfile, PresetsMatchDesignNumbers) {
  const GpuProfile a100 = a100_profile();
  EXPECT_DOUBLE_EQ(a100.compute_per_slot, 43200.0);
  EXPECT_DOUBLE_EQ(a100.mem_gb, 80.0);
  const GpuProfile a40 = a40_profile();
  EXPECT_DOUBLE_EQ(a40.compute_per_slot, 24000.0);
  EXPECT_DOUBLE_EQ(a40.mem_gb, 48.0);
  // A40 ~ 0.55x of A100 (the calibrated ratio).
  EXPECT_NEAR(a40.compute_per_slot / a100.compute_per_slot, 0.55, 0.02);
}

TEST(GpuProfile, FleetComposition) {
  const auto pure = make_fleet(FleetKind::kA100Only, 4);
  ASSERT_EQ(pure.size(), 4u);
  for (const auto& p : pure) EXPECT_EQ(p.name, "A100-80GB");
  const auto hybrid = make_fleet(FleetKind::kHybrid, 4);
  EXPECT_EQ(hybrid[0].name, "A100-80GB");
  EXPECT_EQ(hybrid[1].name, "A40-48GB");
}

TEST(GpuProfile, FleetRejectsNonPositiveSize) {
  EXPECT_THROW(make_fleet(FleetKind::kHybrid, 0), std::invalid_argument);
}

TEST(GpuProfile, ToStringNames) {
  EXPECT_EQ(to_string(FleetKind::kA100Only), "A100");
  EXPECT_EQ(to_string(FleetKind::kA40Only), "A40");
  EXPECT_EQ(to_string(FleetKind::kHybrid), "hybrid");
}

TEST(Cluster, CapacitiesAndBaseModelSharing) {
  const Cluster cluster = mini_cluster(2);
  EXPECT_EQ(cluster.node_count(), 2);
  EXPECT_DOUBLE_EQ(cluster.compute_capacity(0), 1000.0);
  EXPECT_DOUBLE_EQ(cluster.mem_capacity(0), 20.0);
  // Adapter memory excludes the shared base model r_b (constraint 4g).
  EXPECT_DOUBLE_EQ(cluster.adapter_mem_capacity(0), 16.0);
}

TEST(Cluster, TaskRateIsShareOfNodeCapacity) {
  const Cluster cluster = mini_cluster();
  const Task task = make_task(0, 0, 10, 500.0, 2.0, 0.25);
  EXPECT_DOUBLE_EQ(cluster.task_rate(task, 0), 250.0);
}

TEST(Cluster, HomogeneousNodesFormOneClass) {
  const Cluster cluster = mini_cluster(3);
  EXPECT_EQ(cluster.class_count(), 1);
  EXPECT_EQ(cluster.class_nodes(0).size(), 3u);
}

TEST(Cluster, HeterogeneousNodesFormDistinctClasses) {
  const Cluster cluster = testing::hetero_cluster();
  EXPECT_EQ(cluster.class_count(), 2);
  EXPECT_NE(cluster.node_class(0), cluster.node_class(1));
  EXPECT_EQ(cluster.class_representative(cluster.node_class(0)), 0);
}

TEST(Cluster, TotalComputeSums) {
  const Cluster cluster = testing::hetero_cluster();
  EXPECT_DOUBLE_EQ(cluster.total_compute_per_slot(), 3000.0);
}

TEST(Cluster, RejectsInvalidConfigurations) {
  EXPECT_THROW(Cluster({}, 4.0), std::invalid_argument);
  EXPECT_THROW(Cluster({GpuProfile{"x", 100.0, 3.0, 0.1, 1.0}}, 4.0),
               std::invalid_argument);  // no room for base model
  EXPECT_THROW(Cluster({GpuProfile{"x", 0.0, 30.0, 0.1, 1.0}}, 4.0),
               std::invalid_argument);  // zero compute
}

TEST(CapacityLedger, TracksComputeAndMemory) {
  const Cluster cluster = mini_cluster();
  CapacityLedger ledger(cluster, 10);
  EXPECT_DOUBLE_EQ(ledger.remaining_compute(0, 0), 1000.0);
  EXPECT_DOUBLE_EQ(ledger.remaining_mem(0, 0), 16.0);
  ledger.reserve(0, 0, 400.0, 5.0);
  EXPECT_DOUBLE_EQ(ledger.remaining_compute(0, 0), 600.0);
  EXPECT_DOUBLE_EQ(ledger.remaining_mem(0, 0), 11.0);
  EXPECT_EQ(ledger.tasks_on(0, 0), 1);
  // Other cells are untouched.
  EXPECT_DOUBLE_EQ(ledger.remaining_compute(0, 1), 1000.0);
  EXPECT_DOUBLE_EQ(ledger.remaining_compute(1, 0), 1000.0);
}

TEST(CapacityLedger, FitsChecksBothResources) {
  const Cluster cluster = mini_cluster();
  CapacityLedger ledger(cluster, 4);
  EXPECT_TRUE(ledger.fits(0, 0, 1000.0, 16.0));
  EXPECT_FALSE(ledger.fits(0, 0, 1000.1, 1.0));
  EXPECT_FALSE(ledger.fits(0, 0, 1.0, 16.1));
}

TEST(CapacityLedger, FitsRejectsOutOfRangeCells) {
  const Cluster cluster = mini_cluster();
  const CapacityLedger ledger(cluster, 4);
  EXPECT_FALSE(ledger.fits(-1, 0, 1.0, 1.0));
  EXPECT_FALSE(ledger.fits(2, 0, 1.0, 1.0));
  EXPECT_FALSE(ledger.fits(0, 4, 1.0, 1.0));
}

TEST(CapacityLedger, ReserveThrowsWhenOverbooked) {
  const Cluster cluster = mini_cluster();
  CapacityLedger ledger(cluster, 4);
  ledger.reserve(0, 0, 900.0, 4.0);
  EXPECT_THROW(ledger.reserve(0, 0, 200.0, 4.0), std::logic_error);
}

TEST(CapacityLedger, ExclusiveReservationBlocksSharing) {
  const Cluster cluster = mini_cluster();
  CapacityLedger ledger(cluster, 4);
  ledger.reserve(0, 0, 100.0, 2.0, /*exclusive=*/true);
  EXPECT_FALSE(ledger.fits(0, 0, 100.0, 2.0));       // occupied at all
  EXPECT_FALSE(ledger.fits(0, 0, 1.0, 0.1, true));   // exclusive onto busy
  EXPECT_TRUE(ledger.fits(0, 1, 100.0, 2.0, true));  // next slot free
}

TEST(CapacityLedger, ExclusiveOntoSharedCellRejected) {
  const Cluster cluster = mini_cluster();
  CapacityLedger ledger(cluster, 4);
  ledger.reserve(0, 0, 100.0, 2.0, /*exclusive=*/false);
  EXPECT_FALSE(ledger.fits(0, 0, 100.0, 2.0, /*exclusive=*/true));
}

TEST(CapacityLedger, UtilizationAccounting) {
  const Cluster cluster = mini_cluster(1);
  CapacityLedger ledger(cluster, 2);
  EXPECT_DOUBLE_EQ(ledger.compute_utilization(), 0.0);
  ledger.reserve(0, 0, 1000.0, 1.0);
  EXPECT_DOUBLE_EQ(ledger.compute_utilization(), 0.5);
}

TEST(CapacityLedger, RejectsNonPositiveHorizon) {
  const Cluster cluster = mini_cluster();
  EXPECT_THROW(CapacityLedger(cluster, 0), std::invalid_argument);
}

}  // namespace
}  // namespace lorasched
