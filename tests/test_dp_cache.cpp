// Differential coverage for the Alg. 2 hot-path overhaul (DESIGN.md §5):
// the price-epoch cached + arena path must be bit-identical to the legacy
// per-call path at every level — bare ScheduleDp::find across interleaved
// admissions/rejections, full AdmissionService replays (schedules,
// payments, and DecisionTraceRecords), K=4 ShardedService replays, and
// pdFTSP's parallel candidate evaluation — plus unit coverage of the
// DualState dirty-cell journal and TSan-covered concurrent find() calls
// sharing one ScheduleDp.
#include "lorasched/core/schedule_dp.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "lorasched/core/pdftsp.h"
#include "lorasched/obs/registry.h"
#include "lorasched/obs/trace.h"
#include "lorasched/service/admission_service.h"
#include "lorasched/shard/sharded_service.h"
#include "lorasched/sim/engine.h"
#include "lorasched/util/rng.h"
#include "test_helpers.h"

namespace lorasched {
namespace {

/// Rejects every node on slots divisible by 3 and node 0 everywhere —
/// exercises both the dead-row skip (whole slots with no usable class) and
/// per-class argmin filtering in the cached Δ scan.
bool test_filter(const void*, NodeId k, Slot t) {
  return k != 0 && t % 3 != 0;
}

/// Replays `bids` tasks through a cached and a legacy ScheduleDp under
/// lock-step dual movement (an eq. 7/8 update every `admit_every`-th
/// feasible plan) and requires identical runs at every step.
void expect_lockstep_identical(const Instance& instance, std::size_t bids,
                               int admit_every, SlotFilter filter) {
  ScheduleDpConfig cached_config;
  cached_config.price_cache = true;
  ScheduleDpConfig legacy_config;
  legacy_config.price_cache = false;
  const ScheduleDp cached(instance.cluster, instance.energy, cached_config);
  const ScheduleDp legacy(instance.cluster, instance.energy, legacy_config);
  DualState cached_duals(instance.cluster.node_count(), instance.horizon);
  DualState legacy_duals(instance.cluster.node_count(), instance.horizon);
  DpScratch scratch;

  int feasible = 0;
  const std::size_t n = std::min(bids, instance.tasks.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Task& task = instance.tasks[i];
    Schedule fast;
    cached.find_into(fast, task, task.arrival, cached_duals, scratch, nullptr,
                     filter);
    const Schedule slow =
        legacy.find(task, task.arrival, legacy_duals, nullptr, filter);
    ASSERT_EQ(fast.run, slow.run) << "bid " << i;
    if (!fast.empty() && ++feasible % admit_every == 0) {
      Schedule plan = fast;
      finalize_schedule(plan, task, instance.cluster, instance.energy);
      cached_duals.apply_update(task, plan, instance.cluster, 1.0, 1.0, 1.0);
      legacy_duals.apply_update(task, plan, instance.cluster, 1.0, 1.0, 1.0);
      ASSERT_EQ(cached_duals.lambda_values(), legacy_duals.lambda_values());
    }
  }
  EXPECT_GT(feasible, 0);  // the scenario must actually exercise admissions
}

TEST(DpCacheDifferential, FindMatchesLegacyAcrossInterleavedAdmissions) {
  for (const std::uint64_t seed : {1ull, 7ull, 2024ull}) {
    SCOPED_TRACE(seed);
    ScenarioConfig config = testing::small_scenario(seed);
    config.nodes = 8;
    config.horizon = 64;
    config.arrival_rate = 4.0;
    const Instance instance = make_instance(config);
    expect_lockstep_identical(instance, 160, 5, nullptr);
  }
}

TEST(DpCacheDifferential, FilteredFindMatchesLegacy) {
  const Instance instance = make_instance(testing::small_scenario(3));
  expect_lockstep_identical(instance, 120, 4, &test_filter);
}

TEST(DpCacheDifferential, SetLambdaPerturbationsInvalidateTheSnapshot) {
  const Instance instance = make_instance(testing::small_scenario(5));
  ScheduleDpConfig cached_config;  // price_cache defaults to true
  const ScheduleDp cached(instance.cluster, instance.energy, cached_config);
  ScheduleDpConfig legacy_config;
  legacy_config.price_cache = false;
  const ScheduleDp legacy(instance.cluster, instance.energy, legacy_config);
  DualState duals(instance.cluster.node_count(), instance.horizon);

  util::Rng rng(99);
  for (std::size_t i = 0; i < 60 && i < instance.tasks.size(); ++i) {
    const Task& task = instance.tasks[i];
    EXPECT_EQ(cached.find(task, task.arrival, duals).run,
              legacy.find(task, task.arrival, duals).run);
    // Unchanged prices: the repeat must be a cache hit and still agree.
    EXPECT_EQ(cached.find(task, task.arrival, duals).run,
              legacy.find(task, task.arrival, duals).run);
    // Poke one random cell through the colgen-style setters; the epoch
    // bump must invalidate (or journal-patch) the snapshot.
    const auto k = static_cast<NodeId>(
        rng.uniform_int(0, instance.cluster.node_count() - 1));
    const auto t =
        static_cast<Slot>(rng.uniform_int(0, instance.horizon - 1));
    duals.set_lambda(k, t, rng.uniform() * 0.3);
    duals.set_phi(k, t, rng.uniform() * 0.2);
  }
  const ScheduleDp::CacheStats stats = cached.cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
}

TEST(DpCacheDifferential, CopiedDualStateGetsFreshIdentity) {
  const Instance instance = make_instance(testing::small_scenario(8));
  const ScheduleDp dp(instance.cluster, instance.energy);
  DualState original(instance.cluster.node_count(), instance.horizon);
  const Task& task = instance.tasks.front();

  const Schedule before = dp.find(task, task.arrival, original);
  DualState copy = original;  // same grids, fresh uid
  EXPECT_NE(copy.uid(), original.uid());
  EXPECT_EQ(copy.epoch(), original.epoch());
  // Mutating the copy must never be served from the original's snapshot.
  copy.set_lambda(0, task.arrival, 1e9);
  const Schedule after_copy = dp.find(task, task.arrival, copy);
  const Schedule after_original = dp.find(task, task.arrival, original);
  EXPECT_EQ(after_original.run, before.run);
  if (!after_copy.empty()) {
    for (const Assignment& a : after_copy.run) {
      EXPECT_FALSE(a.node == 0 && a.slot == task.arrival);
    }
  }
}

TEST(DpCacheDifferential, CacheStatsCountHitsAndMisses) {
  const Instance instance = make_instance(testing::small_scenario());
  const ScheduleDp dp(instance.cluster, instance.energy);
  DualState duals(instance.cluster.node_count(), instance.horizon);
  const Task& task = instance.tasks.front();

  obs::MetricsRegistry registry;
  dp.register_metrics(registry);

  (void)dp.find(task, task.arrival, duals);  // first use: miss
  (void)dp.find(task, task.arrival, duals);  // unchanged prices: hit
  (void)dp.find(task, task.arrival, duals);
  ScheduleDp::CacheStats stats = dp.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);

  duals.set_lambda(0, 0, 0.5);  // price moved: next find misses
  (void)dp.find(task, task.arrival, duals);
  stats = dp.cache_stats();
  EXPECT_EQ(stats.misses, 2u);

  std::ostringstream prom_out;
  registry.write_prometheus(prom_out);
  const std::string prom = prom_out.str();
  EXPECT_NE(prom.find("lorasched_dp_price_cache_hits_total 2"),
            std::string::npos);
  EXPECT_NE(prom.find("lorasched_dp_price_cache_misses_total 2"),
            std::string::npos);
  EXPECT_NE(prom.find("lorasched_dp_scratch_bytes"), std::string::npos);
  EXPECT_NE(prom.find("lorasched_dp_snapshot_bytes"), std::string::npos);
}

TEST(DpCacheDifferential, PolicyMetricsExportSimdDispatchAndBatchHistogram) {
  const Instance instance = make_instance(testing::small_scenario(43));
  PdftspConfig config = pdftsp_config_for(instance);
  config.admission_batch = 8;
  Pdftsp policy(config, instance.cluster, instance.energy, instance.horizon);
  obs::MetricsRegistry registry;
  policy.register_metrics(registry);
  (void)run_simulation(instance, policy);  // records admission waves

  std::ostringstream prom_out;
  registry.write_prometheus(prom_out);
  const std::string prom = prom_out.str();
  // The dispatch gauge exports the Kernel enum as-is (0/1/2 wire contract).
  const std::string dispatch =
      "lorasched_dp_simd_dispatch " +
      std::to_string(static_cast<int>(policy.config().dp.simd
                                          ? simd::active_kernel()
                                          : simd::Kernel::kScalar));
  EXPECT_NE(prom.find(dispatch), std::string::npos) << prom;
  EXPECT_NE(prom.find("lorasched_admission_batch_size"), std::string::npos);
}

// --- SIMD min-plus kernels (DESIGN.md §5c) ----------------------------------
// On hosts whose active kernel is scalar (no AVX2/NEON, or LORASCHED_SIMD
// off) these degenerate to scalar-vs-scalar and pass trivially; CI runs a
// vector-enabled pass so the differentials bite there.

constexpr double kInfCost = std::numeric_limits<double>::infinity();

TEST(SimdKernels, DpRowMatchesScalarOnRaggedDeadAndSingleClassRows) {
  const simd::Kernel vec = simd::active_kernel();
  util::Rng rng(20250809);
  for (int trial = 0; trial < 500; ++trial) {
    SCOPED_TRACE(trial);
    // Level counts straddle the 2/4/16-lane boundaries, down to a single
    // work level; every 5th trial is the single-class edge.
    const auto levels = static_cast<std::size_t>(rng.uniform_int(1, 37));
    const int classes = trial % 5 == 0 ? 1 : rng.uniform_int(1, 4);
    std::vector<simd::MinPlusClass> live(static_cast<std::size_t>(classes));
    for (std::size_t c = 0; c < live.size(); ++c) {
      // Quantized deltas force exact value ties the choice lane must break
      // by class order, exactly like the scalar scan.
      live[c].delta = rng.uniform_int(0, 7) * 0.125;
      live[c].units = static_cast<std::size_t>(rng.uniform_int(1, 5));
      live[c].cls = static_cast<std::int16_t>(c);
    }
    // Every 7th row is all-dead (+inf everywhere): the carry-over must win
    // every column and the choices must all stay kDpSkip.
    const bool all_dead = trial % 7 == 0;
    std::vector<double> prev(levels);
    for (auto& v : prev) {
      v = all_dead || rng.uniform() < 0.25 ? kInfCost
                                           : rng.uniform_int(0, 15) * 0.25;
    }
    std::vector<double> cur_ref(levels);
    std::vector<double> cur_vec(levels);
    std::vector<std::int16_t> choice_ref(levels);
    std::vector<std::int16_t> choice_vec(levels);
    simd::dp_row(simd::Kernel::kScalar, prev.data(), cur_ref.data(),
                 choice_ref.data(), levels, live.data(),
                 live.data() + live.size());
    simd::dp_row(vec, prev.data(), cur_vec.data(), choice_vec.data(), levels,
                 live.data(), live.data() + live.size());
    ASSERT_EQ(cur_ref, cur_vec);
    ASSERT_EQ(choice_ref, choice_vec);
    if (all_dead) {
      for (const std::int16_t c : choice_vec) ASSERT_EQ(c, simd::kDpSkip);
    }
  }
}

TEST(SimdKernels, CostArgminAndSweepMatchScalarWithTiesAndDeadColumns) {
  const simd::Kernel vec = simd::active_kernel();
  util::Rng rng(777);
  for (int trial = 0; trial < 500; ++trial) {
    SCOPED_TRACE(trial);
    // n sweeps through ragged widths around the 4- and 16-element vector
    // strides, including n == 0 (empty class) and n < one vector.
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 40));
    const auto count = static_cast<std::size_t>(rng.uniform_int(1, 18));
    std::vector<double> lam(n * count);
    std::vector<double> phi(n * count);
    std::vector<double> full_cost(count);
    for (auto& v : lam) {
      // ~20% dead columns (+inf lambda) plus quantized values for ties.
      v = rng.uniform() < 0.2 ? kInfCost : rng.uniform_int(0, 7) * 0.5;
    }
    for (auto& v : phi) v = rng.uniform_int(0, 7) * 0.25;
    for (auto& v : full_cost) v = rng.uniform_int(0, 3) * 1.5;
    const double s = 0.5 + rng.uniform();
    const double r = rng.uniform();

    std::vector<double> best_vec(count);
    std::vector<double> best_ref(count);
    std::vector<std::int32_t> pos_vec(count);
    std::vector<std::int32_t> pos_ref(count);
    simd::cost_argmin_sweep(vec, lam.data(), phi.data(), n, count, n, s, r,
                            full_cost.data(), best_vec.data(), pos_vec.data());
    simd::cost_argmin_sweep(simd::Kernel::kScalar, lam.data(), phi.data(), n,
                            count, n, s, r, full_cost.data(), best_ref.data(),
                            pos_ref.data());
    ASSERT_EQ(best_vec, best_ref);
    ASSERT_EQ(pos_vec, pos_ref);
    // The sweep must also be bit-identical to per-row cost_argmin calls of
    // the same kernel (its contract in minplus.h).
    for (std::size_t j = 0; j < count; ++j) {
      double best = 0.0;
      const std::size_t pos =
          simd::cost_argmin(vec, lam.data() + j * n, phi.data() + j * n, n, s,
                            r, full_cost[j] * s, &best);
      ASSERT_EQ(static_cast<std::int32_t>(pos), pos_vec[j]) << "row " << j;
      ASSERT_EQ(best, best_vec[j]) << "row " << j;
    }
  }
}

/// Replays bids through a SIMD-dispatched and a scalar-pinned cached
/// ScheduleDp in lock-step — eq. 7/8 dual updates every `admit_every`-th
/// feasible plan plus random single-cell price pokes — and requires
/// identical runs at every step.
void expect_simd_lockstep(const Instance& instance, std::size_t bids,
                          int admit_every, SlotFilter filter,
                          double granularity) {
  ScheduleDpConfig vec_config;
  vec_config.granularity = granularity;
  vec_config.simd = true;
  ScheduleDpConfig scalar_config = vec_config;
  scalar_config.simd = false;
  const ScheduleDp vec(instance.cluster, instance.energy, vec_config);
  const ScheduleDp scalar(instance.cluster, instance.energy, scalar_config);
  ASSERT_EQ(scalar.kernel(), simd::Kernel::kScalar);
  DualState vec_duals(instance.cluster.node_count(), instance.horizon);
  DualState scalar_duals(instance.cluster.node_count(), instance.horizon);
  DpScratch scratch;
  util::Rng rng(instance.tasks.empty() ? 1 : instance.tasks.front().id + 11);

  int feasible = 0;
  const std::size_t n = std::min(bids, instance.tasks.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Task& task = instance.tasks[i];
    Schedule fast;
    vec.find_into(fast, task, task.arrival, vec_duals, scratch, nullptr,
                  filter);
    const Schedule slow =
        scalar.find(task, task.arrival, scalar_duals, nullptr, filter);
    ASSERT_EQ(fast.run, slow.run) << "bid " << i;
    if (!fast.empty() && ++feasible % admit_every == 0) {
      Schedule plan = fast;
      finalize_schedule(plan, task, instance.cluster, instance.energy);
      vec_duals.apply_update(task, plan, instance.cluster, 1.0, 1.0, 1.0);
      scalar_duals.apply_update(task, plan, instance.cluster, 1.0, 1.0, 1.0);
    }
    if (i % 9 == 4) {
      // Random duals poke through the colgen-style setters, applied
      // identically to both states.
      const auto k = static_cast<NodeId>(
          rng.uniform_int(0, instance.cluster.node_count() - 1));
      const auto t =
          static_cast<Slot>(rng.uniform_int(0, instance.horizon - 1));
      const double lambda = rng.uniform() * 0.3;
      const double phi = rng.uniform() * 0.2;
      vec_duals.set_lambda(k, t, lambda);
      vec_duals.set_phi(k, t, phi);
      scalar_duals.set_lambda(k, t, lambda);
      scalar_duals.set_phi(k, t, phi);
    }
  }
  EXPECT_GT(feasible, 0);  // the scenario must actually exercise admissions
}

TEST(SimdDifferential, FindMatchesScalarAcrossAdmissionsAndPokes) {
  for (const std::uint64_t seed : {1ull, 7ull, 2024ull}) {
    SCOPED_TRACE(seed);
    ScenarioConfig config = testing::small_scenario(seed);
    config.nodes = 8;
    config.horizon = 64;
    config.arrival_rate = 4.0;
    const Instance instance = make_instance(config);
    expect_simd_lockstep(instance, 160, 5, nullptr, 2.0);
  }
}

TEST(SimdDifferential, FilteredFindMatchesScalar) {
  const Instance instance = make_instance(testing::small_scenario(3));
  expect_simd_lockstep(instance, 120, 4, &test_filter, 2.0);
}

TEST(SimdDifferential, RaggedGranularitiesMatchScalar) {
  // Coarse and odd granularities push the DP's work-level count W through
  // values that are not multiples of the 2/4/16 vector strides.
  const Instance instance = make_instance(testing::small_scenario(13));
  for (const double granularity : {1.0, 3.0, 7.0}) {
    SCOPED_TRACE(granularity);
    expect_simd_lockstep(instance, 100, 4, nullptr, granularity);
  }
}

// --- DualState dirty-cell journal -------------------------------------------

TEST(DualJournal, EnumeratesCellsMutatedSinceAnEpoch) {
  DualState duals(4, 16);
  const std::uint64_t base = duals.epoch();
  duals.set_lambda(1, 3, 0.5);   // cell 1*16+3 = 19
  duals.set_phi(2, 10, 0.25);    // cell 2*16+10 = 42
  std::vector<std::uint32_t> dirty;
  ASSERT_TRUE(duals.dirty_cells_since(base, dirty));
  EXPECT_EQ(dirty, (std::vector<std::uint32_t>{19, 42}));

  // A later caller only sees the tail.
  dirty.clear();
  ASSERT_TRUE(duals.dirty_cells_since(base + 1, dirty));
  EXPECT_EQ(dirty, (std::vector<std::uint32_t>{42}));

  // Same epoch: nothing dirty, still covered.
  dirty.clear();
  ASSERT_TRUE(duals.dirty_cells_since(duals.epoch(), dirty));
  EXPECT_TRUE(dirty.empty());
}

TEST(DualJournal, LoadIsWholesaleAndUncoverable) {
  DualState duals(2, 8);
  const std::uint64_t base = duals.epoch();
  duals.set_lambda(0, 0, 0.1);
  duals.load(duals.lambda_values(), duals.phi_values());
  std::vector<std::uint32_t> dirty;
  EXPECT_FALSE(duals.dirty_cells_since(base, dirty));
  // After load, new mutations journal again from the post-load epoch.
  const std::uint64_t after_load = duals.epoch();
  duals.set_phi(1, 2, 0.3);
  dirty.clear();
  ASSERT_TRUE(duals.dirty_cells_since(after_load, dirty));
  EXPECT_EQ(dirty, (std::vector<std::uint32_t>{10}));
}

TEST(DualJournal, ApplyUpdateJournalsExactlyTheRunCells) {
  const Cluster cluster = testing::mini_cluster();
  DualState duals(cluster.node_count(), 16);
  const Task task = testing::make_task(0, 0, 7, 900.0);
  Schedule schedule;
  schedule.task = task.id;
  schedule.run = {{0, 2}, {1, 3}, {0, 4}};
  finalize_schedule(schedule, task, cluster, testing::flat_energy());
  const std::uint64_t base = duals.epoch();
  duals.apply_update(task, schedule, cluster, 1.0, 1.0, 1.0);
  std::vector<std::uint32_t> dirty;
  ASSERT_TRUE(duals.dirty_cells_since(base, dirty));
  EXPECT_EQ(dirty, (std::vector<std::uint32_t>{2, 16 + 3, 4}));
}

// --- Service-level differentials --------------------------------------------

struct ServiceReplay {
  SimResult result;
  std::string trace_jsonl;
};

ServiceReplay replay_monolithic(const Instance& instance, bool price_cache) {
  PdftspConfig config = pdftsp_config_for(instance);
  config.dp.price_cache = price_cache;
  Pdftsp policy(config, instance.cluster, instance.energy, instance.horizon);
  std::ostringstream jsonl;
  obs::DecisionTracer tracer(&jsonl);
  policy.set_trace_sink(&tracer);
  service::AdmissionService service(instance, policy);
  for (const Task& task : instance.tasks) {
    EXPECT_EQ(service.submit(task), service::SubmitResult::kAccepted);
  }
  while (!service.done()) service.step();
  ServiceReplay replay;
  replay.result = service.finish();
  tracer.flush();
  replay.trace_jsonl = jsonl.str();
  return replay;
}

void expect_same_results(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a.outcomes[i].task, b.outcomes[i].task);
    EXPECT_EQ(a.outcomes[i].admitted, b.outcomes[i].admitted);
    EXPECT_EQ(a.outcomes[i].payment, b.outcomes[i].payment);
    EXPECT_EQ(a.outcomes[i].vendor, b.outcomes[i].vendor);
    EXPECT_EQ(a.outcomes[i].energy_cost, b.outcomes[i].energy_cost);
  }
  ASSERT_EQ(a.schedules.size(), b.schedules.size());
  for (std::size_t i = 0; i < a.schedules.size(); ++i) {
    EXPECT_EQ(a.schedules[i].run, b.schedules[i].run);
  }
  EXPECT_EQ(a.metrics.social_welfare, b.metrics.social_welfare);
  EXPECT_EQ(a.metrics.total_payments, b.metrics.total_payments);
  EXPECT_EQ(a.metrics.admitted, b.metrics.admitted);
  EXPECT_EQ(a.metrics.rejected, b.metrics.rejected);
}

TEST(ServiceDifferential, MonolithicCacheOnOffBitIdentical) {
  const Instance instance = make_instance(testing::small_scenario(17));
  const ServiceReplay cached = replay_monolithic(instance, true);
  const ServiceReplay legacy = replay_monolithic(instance, false);
  expect_same_results(cached.result, legacy.result);
  // Byte-identical DecisionTraceRecord streams: candidates, objectives,
  // payment decompositions, and dual samples all match exactly.
  EXPECT_EQ(cached.trace_jsonl, legacy.trace_jsonl);
  EXPECT_FALSE(cached.trace_jsonl.empty());
}

SimResult replay_sharded(const Instance& instance, bool price_cache,
                         int parallel_candidates = 0) {
  PdftspConfig config = pdftsp_config_for(instance);
  config.dp.price_cache = price_cache;
  config.parallel_candidates = parallel_candidates;
  shard::ShardedConfig sharded;
  sharded.shards = 4;
  shard::ShardedService service(instance,
                                shard::make_pdftsp_factory(config), sharded);
  for (const Task& task : instance.tasks) {
    EXPECT_EQ(service.submit(task), service::SubmitResult::kAccepted);
  }
  while (!service.done()) service.step();
  return service.finish();
}

TEST(ServiceDifferential, ShardedK4CacheOnOffBitIdentical) {
  ScenarioConfig config = testing::small_scenario(23);
  config.nodes = 8;  // four 2-node shards
  const Instance instance = make_instance(config);
  expect_same_results(replay_sharded(instance, true),
                      replay_sharded(instance, false));
}

TEST(ServiceDifferential, ShardedParallelCandidatesBitIdentical) {
  ScenarioConfig config = testing::small_scenario(29);
  config.nodes = 8;
  const Instance instance = make_instance(config);
  expect_same_results(replay_sharded(instance, true, 0),
                      replay_sharded(instance, true, 4));
}

// --- Parallel candidate evaluation ------------------------------------------

TEST(ParallelCandidates, BitIdenticalToSerialWithShareOptions) {
  const Instance instance = make_instance(testing::small_scenario(31));
  PdftspConfig serial_config = pdftsp_config_for(instance);
  // Widen the candidate set (vendors × shares) so the pool actually fans
  // out, including exact-tie opportunities the reduction must break by
  // candidate order, not completion order.
  serial_config.share_options = {0.25, 0.5, 1.0};
  PdftspConfig parallel_config = serial_config;
  parallel_config.parallel_candidates = 4;

  Pdftsp serial(serial_config, instance.cluster, instance.energy,
                instance.horizon);
  Pdftsp parallel(parallel_config, instance.cluster, instance.energy,
                  instance.horizon);
  std::ostringstream serial_jsonl;
  std::ostringstream parallel_jsonl;
  obs::DecisionTracer serial_tracer(&serial_jsonl);
  obs::DecisionTracer parallel_tracer(&parallel_jsonl);
  serial.set_trace_sink(&serial_tracer);
  parallel.set_trace_sink(&parallel_tracer);

  const SimResult a = run_simulation(instance, serial);
  const SimResult b = run_simulation(instance, parallel);
  expect_same_results(a, b);
  serial_tracer.flush();
  parallel_tracer.flush();
  EXPECT_EQ(serial_jsonl.str(), parallel_jsonl.str());
  EXPECT_FALSE(serial_jsonl.str().empty());
}

// --- Concurrency (TSan coverage: ScheduleDpConcurrency in the CI regex) ------

TEST(ScheduleDpConcurrency, ConcurrentFindsShareOneScheduleDp) {
  const Instance instance = make_instance(testing::small_scenario(37));
  const ScheduleDp dp(instance.cluster, instance.energy);
  obs::MetricsRegistry registry;
  dp.register_metrics(registry);
  DualState duals(instance.cluster.node_count(), instance.horizon);

  const std::size_t bids = std::min<std::size_t>(48, instance.tasks.size());
  std::vector<Schedule> expected(bids);
  for (std::size_t i = 0; i < bids; ++i) {
    const Task& task = instance.tasks[i];
    expected[i] = dp.find(task, task.arrival, duals);
  }

  // Two rounds separated by a dual mutation: round 0 exercises concurrent
  // snapshot *use*, round 1 concurrent miss/rebuild racing against hits.
  for (int round = 0; round < 2; ++round) {
    std::atomic<int> mismatches{0};
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
      workers.emplace_back([&] {
        DpScratch scratch;
        Schedule plan;
        for (std::size_t i = 0; i < bids; ++i) {
          const Task& task = instance.tasks[i];
          dp.find_into(plan, task, task.arrival, duals, scratch);
          if (plan.run != expected[i].run) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& worker : workers) worker.join();
    EXPECT_EQ(mismatches.load(), 0);
    if (round == 0) {
      duals.set_lambda(0, 0, 0.7);  // workers are joined: safe to mutate
      for (std::size_t i = 0; i < bids; ++i) {
        const Task& task = instance.tasks[i];
        expected[i] = dp.find(task, task.arrival, duals);
      }
    }
  }
  const ScheduleDp::CacheStats stats = dp.cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GE(stats.misses, 1u);
}

}  // namespace
}  // namespace lorasched
