#include "lorasched/workload/taskgen.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "lorasched/workload/deadlines.h"
#include "test_helpers.h"

namespace lorasched {
namespace {

struct GenFixture : ::testing::Test {
  Cluster cluster = testing::hetero_cluster();
  EnergyModel energy = testing::flat_energy();
  Marketplace market{Marketplace::Config{}, 11};
  TaskGenConfig config;
  TaskGenerator gen{config, cluster, energy, market, 77};
};

TEST_F(GenFixture, DrawRespectsConfiguredRanges) {
  for (TaskId id = 0; id < 200; ++id) {
    const Task task = gen.draw(id, 5, 144);
    EXPECT_EQ(task.id, id);
    EXPECT_EQ(task.arrival, 5);
    EXPECT_GE(task.dataset_samples, config.dataset_lo);
    EXPECT_LE(task.dataset_samples, config.dataset_hi);
    EXPECT_GE(task.epochs, config.epochs_lo);
    EXPECT_LE(task.epochs, config.epochs_hi);
    EXPECT_DOUBLE_EQ(task.work, task.dataset_samples * task.epochs);
    EXPECT_GE(task.mem_gb, config.mem_lo_gb);
    EXPECT_LE(task.mem_gb, config.mem_hi_gb);
    EXPECT_GT(task.bid, 0.0);
    EXPECT_DOUBLE_EQ(task.bid, task.true_value);
    EXPECT_GT(task.deadline, task.arrival);
    EXPECT_LT(task.deadline, 144);
  }
}

TEST_F(GenFixture, DrawIsDeterministicPerId) {
  const Task a = gen.draw(9, 0, 144);
  const Task b = gen.draw(9, 0, 144);
  EXPECT_DOUBLE_EQ(a.work, b.work);
  EXPECT_DOUBLE_EQ(a.bid, b.bid);
  EXPECT_EQ(a.deadline, b.deadline);
}

TEST_F(GenFixture, PoissonArrivalCountMatchesRate) {
  const auto tasks = gen.generate_poisson(4.0, 100);
  EXPECT_NEAR(static_cast<double>(tasks.size()), 400.0, 80.0);
  for (const Task& t : tasks) {
    EXPECT_GE(t.arrival, 0);
    EXPECT_LT(t.arrival, 100);
  }
}

TEST_F(GenFixture, ArrivalsSortedAndIdsDense) {
  const auto tasks = gen.generate_poisson(2.0, 50);
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    EXPECT_LE(tasks[i - 1].arrival, tasks[i].arrival);
    EXPECT_EQ(tasks[i].id, static_cast<TaskId>(i));
  }
}

TEST_F(GenFixture, InhomogeneousRatesShapeArrivals) {
  std::vector<double> rates(60, 0.0);
  for (int t = 30; t < 60; ++t) rates[static_cast<std::size_t>(t)] = 6.0;
  const auto tasks = gen.generate(rates, 60);
  for (const Task& t : tasks) EXPECT_GE(t.arrival, 30);
  EXPECT_GT(tasks.size(), 100u);
}

TEST_F(GenFixture, GenerateRejectsWrongRateVectorLength) {
  EXPECT_THROW(gen.generate(std::vector<double>(10, 1.0), 20),
               std::invalid_argument);
}

TEST_F(GenFixture, ReferenceCostUsesCheapestNodeAndVendor) {
  Task task = testing::make_task(0, 0, 20, 6000.0);
  task.needs_prep = false;
  const Money base = gen.reference_cost(task);
  EXPECT_GT(base, 0.0);
  Task with_prep = task;
  with_prep.needs_prep = true;
  EXPECT_GT(gen.reference_cost(with_prep), base);
}

TEST_F(GenFixture, BidMarginsSpanProfitAndLoss) {
  // With margins in [0.6, 3.5] some tasks bid below reference cost and some
  // far above — the auction has to discriminate.
  int below = 0;
  int above = 0;
  for (TaskId id = 0; id < 300; ++id) {
    const Task task = gen.draw(id, 0, 144);
    const Money ref = gen.reference_cost(task);
    if (task.bid < ref) ++below;
    if (task.bid > 2.0 * ref) ++above;
  }
  EXPECT_GT(below, 10);
  EXPECT_GT(above, 10);
}

TEST(TaskGen, RejectsBadConfig) {
  const Cluster cluster = testing::mini_cluster();
  const EnergyModel energy = testing::flat_energy();
  const Marketplace market{Marketplace::Config{}, 1};
  TaskGenConfig bad;
  bad.dataset_hi = bad.dataset_lo - 1.0;
  EXPECT_THROW(TaskGenerator(bad, cluster, energy, market, 1),
               std::invalid_argument);
  TaskGenConfig epochs;
  epochs.epochs_lo = 0;
  EXPECT_THROW(TaskGenerator(epochs, cluster, energy, market, 1),
               std::invalid_argument);
  TaskGenConfig shares;
  shares.share_choices.clear();
  EXPECT_THROW(TaskGenerator(shares, cluster, energy, market, 1),
               std::invalid_argument);
}

TEST(TaskGen, AlphaBetaBoundsUseNormalizedMinimalVolumes) {
  const Cluster cluster = testing::mini_cluster();  // C=1000, adapter 16 GB
  std::vector<Task> tasks;
  // Both finish in 1 slot at rate 500 -> minimal compute volume 0.5.
  tasks.push_back(testing::make_task(0, 0, 10, 100.0, 2.0, 0.5, 10.0));
  tasks.push_back(testing::make_task(1, 0, 10, 50.0, 4.0, 0.5, 20.0));
  EXPECT_DOUBLE_EQ(alpha_bound(tasks, cluster), 40.0);  // 20 / 0.5
  // beta = max b * cap_max / r = max(10*16/2, 20*16/4) = 80.
  EXPECT_DOUBLE_EQ(beta_bound(tasks, cluster), 80.0);
}

TEST(TaskGen, WelfareUnitIsLowQuantileDensity) {
  const Cluster cluster = testing::mini_cluster();
  std::vector<Task> tasks;
  tasks.push_back(testing::make_task(0, 0, 10, 100.0, 2.0, 0.5, 10.0));
  tasks.push_back(testing::make_task(1, 0, 10, 50.0, 4.0, 0.5, 20.0));
  // Densities: 10/(0.5 + 2/16) = 16 and 20/(0.5 + 4/16) ~ 26.67; the
  // first-quartile pick on two samples is the smaller.
  EXPECT_NEAR(welfare_unit_estimate(tasks, cluster), 16.0, 1e-9);
}

TEST(TaskGen, AlphaBetaOfEmptyAreNeutral) {
  const Cluster cluster = testing::mini_cluster();
  EXPECT_EQ(alpha_bound({}, cluster), 0.0);
  EXPECT_EQ(beta_bound({}, cluster), 0.0);
  EXPECT_EQ(welfare_unit_estimate({}, cluster), 1.0);
}

TEST(DeadlineModel, SlackOrderingTightToSlack) {
  const Cluster cluster = testing::mini_cluster();
  util::Rng rng(3);
  Task task = testing::make_task(0, 10, 0, 2000.0, 2.0, 0.5);
  DeadlineModel tight{DeadlineKind::kTight};
  DeadlineModel slack{DeadlineKind::kSlack};
  double tight_sum = 0.0;
  double slack_sum = 0.0;
  for (int i = 0; i < 50; ++i) {
    tight_sum += tight.draw(task, cluster, 144, rng);
    slack_sum += slack.draw(task, cluster, 144, rng);
  }
  EXPECT_LT(tight_sum, slack_sum);
}

TEST(DeadlineModel, DeadlineAlwaysAfterArrivalWithinHorizon) {
  const Cluster cluster = testing::mini_cluster();
  util::Rng rng(4);
  const DeadlineModel model{DeadlineKind::kMedium};
  for (int i = 0; i < 100; ++i) {
    Task task = testing::make_task(0, 40, 0, 5000.0, 2.0, 0.25);
    const Slot d = model.draw(task, cluster, 48, rng);
    EXPECT_GT(d, 40);
    EXPECT_LT(d, 48);
  }
}

TEST(DeadlineModel, MinRuntimeUsesFastestNode) {
  const Cluster cluster = testing::hetero_cluster();  // fast node: 2000/slot
  const Task task = testing::make_task(0, 0, 0, 3000.0, 2.0, 0.5);
  // rate on fast node = 1000/slot -> 3 slots.
  EXPECT_EQ(DeadlineModel::min_runtime_slots(task, cluster), 3);
}

TEST(DeadlineModel, ToStringNames) {
  EXPECT_EQ(to_string(DeadlineKind::kTight), "tight");
  EXPECT_EQ(to_string(DeadlineKind::kMedium), "medium");
  EXPECT_EQ(to_string(DeadlineKind::kSlack), "slack");
}

}  // namespace
}  // namespace lorasched
