// Tests for the offline column-generation bound (the Gurobi substitute) and
// the empirical-competitive-ratio helper.
#include "lorasched/solver/colgen.h"

#include <gtest/gtest.h>

#include "lorasched/baselines/offline.h"
#include "lorasched/core/pdftsp.h"
#include "lorasched/experiments/scenario.h"
#include "lorasched/sim/engine.h"
#include "test_helpers.h"

namespace lorasched {
namespace {

using testing::flat_energy;
using testing::make_task;
using testing::mini_cluster;

Instance offline_instance(std::vector<Task> tasks, int nodes = 2,
                          Slot horizon = 16) {
  return Instance(mini_cluster(nodes), flat_energy(),
                  Marketplace(Marketplace::Config{}, 5), horizon,
                  std::move(tasks));
}

TEST(Colgen, EmptyInstanceIsTriviallyOptimal) {
  const Instance instance = offline_instance({});
  const OfflineBound bound = solve_offline(instance);
  EXPECT_TRUE(bound.converged);
  EXPECT_EQ(bound.lp_bound, 0.0);
  EXPECT_EQ(bound.integer_value, 0.0);
}

TEST(Colgen, SingleProfitableTaskFullyCaptured) {
  // One task, plenty of room: OPT = bid - min energy cost.
  std::vector<Task> tasks{make_task(0, 0, 12, 900.0, 2.0, 0.5, 5.0)};
  const Instance instance = offline_instance(tasks);
  const OfflineBound bound = solve_offline(instance);
  EXPECT_TRUE(bound.converged);
  // 2 slots * e(0.1) = 0.2 energy => welfare 4.8.
  EXPECT_NEAR(bound.integer_value, 4.8, 1e-6);
  EXPECT_NEAR(bound.lp_bound, 4.8, 1e-6);
}

TEST(Colgen, UnprofitableTaskExcluded) {
  std::vector<Task> tasks{make_task(0, 0, 12, 900.0, 2.0, 0.5, 0.01)};
  const Instance instance = offline_instance(tasks);
  const OfflineBound bound = solve_offline(instance);
  EXPECT_TRUE(bound.converged);
  EXPECT_EQ(bound.integer_value, 0.0);
}

TEST(Colgen, LpBoundDominatesIntegerValue) {
  std::vector<Task> tasks;
  for (TaskId id = 0; id < 8; ++id) {
    tasks.push_back(make_task(id, id % 4, 14, 1100.0, 6.0, 0.5, 4.0 + id));
  }
  const Instance instance = offline_instance(tasks);
  const OfflineBound bound = solve_offline(instance);
  EXPECT_GE(bound.lp_bound + 1e-6, bound.integer_value);
  EXPECT_GT(bound.columns, 0);
}

TEST(Colgen, CapacityForcesSelection) {
  // Two tasks want the same single feasible slot on one node with memory
  // for only one of them: the offline optimum picks the higher bid.
  std::vector<Task> tasks{make_task(0, 0, 0, 400.0, 10.0, 0.4, 6.0),
                          make_task(1, 0, 0, 400.0, 10.0, 0.4, 9.0)};
  const Instance instance = offline_instance(tasks, /*nodes=*/1);
  const OfflineBound bound = solve_offline(instance);
  ASSERT_TRUE(bound.converged);
  // Winner is the 9.0 bid minus its energy (~0.08).
  EXPECT_GT(bound.integer_value, 8.5);
  EXPECT_LT(bound.integer_value, 9.0);
}

TEST(Colgen, OfflineBeatsOrMatchesOnlineOnSmallScenario) {
  ScenarioConfig config = testing::small_scenario(11);
  config.arrival_rate = 1.0;
  config.horizon = 24;
  const Instance instance = make_instance(config);
  Pdftsp policy(pdftsp_config_for(instance), instance.cluster, instance.energy,
                instance.horizon);
  const SimResult online = run_simulation(instance, policy);
  const OfflineBound bound = solve_offline(instance);
  ASSERT_TRUE(bound.converged);
  // The offline LP bound must upper-bound what the online algorithm got.
  EXPECT_GE(bound.lp_bound + 1e-6, online.metrics.social_welfare);
}

TEST(EmpiricalRatio, RatioAtLeastOneAndLpDominates) {
  ScenarioConfig config = testing::small_scenario(13);
  config.arrival_rate = 1.2;
  config.horizon = 24;
  const Instance instance = make_instance(config);
  Pdftsp policy(pdftsp_config_for(instance), instance.cluster, instance.energy,
                instance.horizon);
  const SimResult online = run_simulation(instance, policy);
  const EmpiricalRatio ratio = empirical_ratio(instance, online);
  if (ratio.online_welfare > 0.0) {
    EXPECT_GE(ratio.vs_lp_bound + 1e-9, ratio.vs_integer);
    EXPECT_GE(ratio.vs_lp_bound, 1.0 - 1e-6);
  }
}

TEST(EmpiricalRatio, ZeroOnlineWelfareGivesZeroRatios) {
  const Instance instance = offline_instance({});
  SimResult online;  // zero welfare
  const EmpiricalRatio ratio = empirical_ratio(instance, online);
  EXPECT_EQ(ratio.vs_integer, 0.0);
  EXPECT_EQ(ratio.vs_lp_bound, 0.0);
}

}  // namespace
}  // namespace lorasched
