// SlotClock drift regression: slot boundaries are absolute (epoch +
// (t+1)·period), so per-slot decision work must never accumulate into the
// pacing. A relative-sleep clock ("sleep period after finishing the
// batch") drifts by the callback cost every slot; this pins the
// sleep_until contract.
#include "lorasched/service/slot_clock.h"

#include <gtest/gtest.h>

#include <chrono>

#include "lorasched/util/timing.h"

namespace lorasched::service {
namespace {

using std::chrono::milliseconds;

void busy_wait(milliseconds duration) {
  const auto start = util::MonoClock::now();
  while (util::MonoClock::now() - start < duration) {
    // spin — a sleeping callback would not expose relative-sleep drift
  }
}

TEST(SlotClock, BusySlotCallbacksDoNotAccumulateDrift) {
  constexpr Slot kSlots = 20;
  const milliseconds period(10);
  const milliseconds busy(5);  // half a period of decision work per slot

  const SlotClock clock(period);
  for (Slot t = 0; t < kSlots; ++t) {
    clock.wait_slot_end(t);
    busy_wait(busy);  // the slot's decision batch
  }
  const auto elapsed = util::MonoClock::now() - clock.epoch();

  // Absolute boundaries absorb the busy work: total ≈ kSlots·period (plus
  // the final callback). A drifting clock would need at least
  // kSlots·(period + busy) = 300 ms; leave generous scheduler headroom
  // below that.
  EXPECT_GE(elapsed, period * kSlots);
  EXPECT_LT(elapsed, period * kSlots + milliseconds(60));
  EXPECT_GE(clock.now(), kSlots);
}

TEST(SlotClock, ZeroPeriodNeverBlocks) {
  const SlotClock clock(milliseconds(0));
  const auto start = util::MonoClock::now();
  clock.wait_slot_end(1'000'000);
  EXPECT_LT(util::MonoClock::now() - start, milliseconds(5));
  EXPECT_EQ(clock.now(), 0);
}

TEST(SlotClock, PastBoundariesReturnImmediately) {
  const SlotClock clock(milliseconds(5));
  busy_wait(milliseconds(12));  // slots 0 and 1 are already over
  const auto start = util::MonoClock::now();
  clock.wait_slot_end(0);
  clock.wait_slot_end(1);
  EXPECT_LT(util::MonoClock::now() - start, milliseconds(4));
  EXPECT_GE(clock.now(), 2);
}

}  // namespace
}  // namespace lorasched::service
