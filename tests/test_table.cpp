#include "lorasched/util/table.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace lorasched::util {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table("t", {}), std::invalid_argument);
}

TEST(Table, RejectsWrongRowWidth) {
  Table table("t", {"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, PrintContainsTitleHeaderAndCells) {
  Table table("My Figure", {"algo", "welfare"});
  table.add_row({"pdFTSP", "1.000"});
  table.add_row({"EFT", "0.400"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("My Figure"), std::string::npos);
  EXPECT_NE(out.find("algo"), std::string::npos);
  EXPECT_NE(out.find("pdFTSP"), std::string::npos);
  EXPECT_NE(out.find("0.400"), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
  Table table("t", {"a", "b"});
  table.add_row({"x", "1"});
  std::ostringstream os;
  table.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,1\n");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table table("t", {"a"});
  table.add_row({"hello, \"world\""});
  std::ostringstream os;
  table.write_csv(os);
  EXPECT_EQ(os.str(), "a\n\"hello, \"\"world\"\"\"\n");
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, PctFormatsRatio) {
  EXPECT_EQ(Table::pct(0.4899), "48.99%");
  EXPECT_EQ(Table::pct(1.5157), "151.57%");
}

TEST(Table, AccessorsExposeData) {
  Table table("t", {"a", "b"});
  table.add_row({"x", "y"});
  EXPECT_EQ(table.rows(), 1u);
  EXPECT_EQ(table.header().size(), 2u);
  EXPECT_EQ(table.data()[0][1], "y");
}

}  // namespace
}  // namespace lorasched::util
