#include "lorasched/util/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace lorasched::util {
namespace {

TEST(ThreadPool, RunsSubmittedJobs) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ThreadCountRespected) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, 0, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  parallel_for(pool, 5, 5, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 0);
}

TEST(ParallelFor, ComputesParallelSum) {
  ThreadPool pool(4);
  std::vector<long> partial(1000, 0);
  parallel_for(pool, 0, partial.size(), [&](std::size_t i) {
    partial[i] = static_cast<long>(i);
  });
  const long total = std::accumulate(partial.begin(), partial.end(), 0L);
  EXPECT_EQ(total, 999L * 1000L / 2);
}

TEST(ParallelFor, RethrowsFirstWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, RemainingIterationsStillRunAfterThrow) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  try {
    parallel_for(pool, 0, hits.size(), [&](std::size_t i) {
      if (i == 5) throw std::runtime_error("boom");
      hits[i].fetch_add(1);
    });
    FAIL() << "expected the worker exception to propagate";
  } catch (const std::runtime_error&) {
  }
  // Every index except the throwing one completed — no whole chunks lost.
  for (std::size_t i = 0; i < hits.size(); ++i) {
    if (i == 5) continue;
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, PoolUsableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 0, 10,
                            [](std::size_t) {
                              throw std::logic_error("first batch fails");
                            }),
               std::logic_error);
  std::atomic<int> counter{0};
  parallel_for(pool, 0, 20, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) pool.submit([&] { counter.fetch_add(1); });
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 150);
}

}  // namespace
}  // namespace lorasched::util
