// Tests for the per-slot time series and the ASCII Gantt renderer.
#include <gtest/gtest.h>

#include "lorasched/core/pdftsp.h"
#include "lorasched/sim/engine.h"
#include "lorasched/sim/gantt.h"
#include "lorasched/sim/timeseries.h"
#include "test_helpers.h"

namespace lorasched {
namespace {

SimResult run_small(const Instance& instance) {
  Pdftsp policy(pdftsp_config_for(instance), instance.cluster, instance.energy,
                instance.horizon);
  return run_simulation(instance, policy);
}

TEST(TimeSeries, DimensionsMatchHorizon) {
  const Instance instance = make_instance(testing::small_scenario(51));
  const SimResult result = run_small(instance);
  const SlotSeries series = build_series(instance, result);
  EXPECT_EQ(series.horizon(), instance.horizon);
  EXPECT_EQ(series.admissions.size(), series.arrivals.size());
  EXPECT_EQ(series.utilization.size(), series.arrivals.size());
}

TEST(TimeSeries, ArrivalCountsMatchWorkload) {
  const Instance instance = make_instance(testing::small_scenario(51));
  const SimResult result = run_small(instance);
  const SlotSeries series = build_series(instance, result);
  int total = 0;
  for (int a : series.arrivals) total += a;
  EXPECT_EQ(total, static_cast<int>(instance.tasks.size()));
}

TEST(TimeSeries, AdmissionsNeverExceedArrivals) {
  const Instance instance = make_instance(testing::small_scenario(53));
  const SimResult result = run_small(instance);
  const SlotSeries series = build_series(instance, result);
  int admitted = 0;
  for (std::size_t t = 0; t < series.arrivals.size(); ++t) {
    EXPECT_LE(series.admissions[t], series.arrivals[t]);
    admitted += series.admissions[t];
  }
  EXPECT_EQ(admitted, result.metrics.admitted);
}

TEST(TimeSeries, CumulativeWelfareMonotoneAndEndsAtTotal) {
  const Instance instance = make_instance(testing::small_scenario(51));
  const SimResult result = run_small(instance);
  const SlotSeries series = build_series(instance, result);
  for (std::size_t t = 1; t < series.cumulative_welfare.size(); ++t) {
    EXPECT_GE(series.cumulative_welfare[t], series.cumulative_welfare[t - 1]);
  }
  EXPECT_NEAR(series.cumulative_welfare.back(), result.metrics.social_welfare,
              1e-6);
}

TEST(TimeSeries, UtilizationAveragesToRunTotal) {
  const Instance instance = make_instance(testing::small_scenario(51));
  const SimResult result = run_small(instance);
  const SlotSeries series = build_series(instance, result);
  double total = 0.0;
  for (double u : series.utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
    total += u;
  }
  EXPECT_NEAR(total / static_cast<double>(series.utilization.size()),
              result.metrics.utilization, 1e-6);
}

TEST(TimeSeries, RejectsResultWithoutSchedules) {
  const Instance instance = make_instance(testing::small_scenario(51));
  SimResult result = run_small(instance);
  result.schedules.clear();
  EXPECT_THROW((void)build_series(instance, result), std::invalid_argument);
}

TEST(Gantt, RendersOneRowPerNode) {
  const Instance instance = make_instance(testing::small_scenario(55));
  const SimResult result = run_small(instance);
  const std::string art = render_gantt(instance, result);
  int rows = 0;
  for (char ch : art) rows += ch == '\n';
  // Header + one line per node.
  EXPECT_EQ(rows, 1 + instance.cluster.node_count());
  EXPECT_NE(art.find("node 0"), std::string::npos);
}

TEST(Gantt, CellsReflectOccupancy) {
  // One admitted task on a single node: its slots must be non-idle.
  const Instance instance = make_instance(testing::small_scenario(55));
  const SimResult result = run_small(instance);
  const std::string art = render_gantt(instance, result);
  bool any_busy = false;
  for (char ch : art) any_busy = any_busy || (ch >= '1' && ch <= '9');
  EXPECT_TRUE(any_busy);
}

TEST(Gantt, TruncatesLargeClusters) {
  ScenarioConfig config = testing::small_scenario(55);
  config.nodes = 40;
  const Instance instance = make_instance(config);
  const SimResult result = run_small(instance);
  GanttOptions options;
  options.max_nodes = 4;
  const std::string art = render_gantt(instance, result, options);
  EXPECT_NE(art.find("36 more nodes not shown"), std::string::npos);
}

TEST(Gantt, RejectsBadRanges) {
  const Instance instance = make_instance(testing::small_scenario(55));
  const SimResult result = run_small(instance);
  GanttOptions inverted;
  inverted.from = 10;
  inverted.to = 5;
  EXPECT_THROW((void)render_gantt(instance, result, inverted),
               std::invalid_argument);
  GanttOptions beyond;
  beyond.to = instance.horizon + 1;
  EXPECT_THROW((void)render_gantt(instance, result, beyond),
               std::invalid_argument);
}

TEST(Gantt, WindowRestrictsColumns) {
  const Instance instance = make_instance(testing::small_scenario(55));
  const SimResult result = run_small(instance);
  GanttOptions options;
  options.from = 0;
  options.to = 10;
  const std::string art = render_gantt(instance, result, options);
  // Every node row should carry exactly 10 occupancy cells after the
  // bracketed profile name.
  const auto pos = art.find("] ");
  ASSERT_NE(pos, std::string::npos);
  const auto eol = art.find('\n', pos);
  EXPECT_EQ(eol - pos - 2, 10u);
}

}  // namespace
}  // namespace lorasched
