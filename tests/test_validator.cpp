// Negative-path coverage for validate_schedule: one failing schedule per
// paper constraint (4a)-(4e), each asserting the diagnostic names the
// violated constraint — the message is load-bearing, it is what the engine
// embeds in the std::logic_error a buggy policy dies with.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "lorasched/cluster/cluster.h"
#include "lorasched/cluster/gpu_profile.h"
#include "lorasched/core/schedule.h"
#include "lorasched/sim/validator.h"
#include "lorasched/types.h"
#include "lorasched/workload/task.h"

namespace lorasched {
namespace {

constexpr Slot kHorizon = 10;

Cluster make_cluster() {
  GpuProfile p;
  p.name = "test-gpu";
  p.compute_per_slot = 40.0;  // task rate below: 0.25 * 40 = 10 samples/slot
  p.mem_gb = 80.0;
  p.power_kw = 0.4;
  p.hourly_cost = 1.5;
  return Cluster({p, p}, 10.0);
}

Task make_task() {
  Task t;
  t.id = 7;
  t.arrival = 2;
  t.deadline = 6;
  t.work = 25.0;  // needs 3 of the 5 window slots at 10 samples/slot
  t.mem_gb = 2.0;
  t.compute_share = 0.25;
  t.bid = 5.0;
  t.true_value = 5.0;
  return t;
}

Schedule make_schedule(const Task& t) {
  Schedule s;
  s.task = t.id;
  s.run = {{0, 2}, {0, 3}, {1, 4}};
  return s;
}

class ValidatorTest : public ::testing::Test {
 protected:
  Cluster cluster_ = make_cluster();
  Task task_ = make_task();
  Schedule schedule_ = make_schedule(task_);
};

TEST_F(ValidatorTest, WellFormedSchedulePasses) {
  EXPECT_EQ(validate_schedule(task_, schedule_, cluster_, kHorizon), "");
}

TEST_F(ValidatorTest, MissingVendorNames4a) {
  task_.needs_prep = true;  // schedule_.vendor stays kNoVendor
  const std::string why =
      validate_schedule(task_, schedule_, cluster_, kHorizon);
  EXPECT_NE(why.find("(4a)"), std::string::npos) << why;
  EXPECT_NE(why.find("no vendor"), std::string::npos) << why;
}

TEST_F(ValidatorTest, SpuriousVendorNames4a) {
  schedule_.vendor = 0;  // task_.needs_prep is false
  const std::string why =
      validate_schedule(task_, schedule_, cluster_, kHorizon);
  EXPECT_NE(why.find("(4a)"), std::string::npos) << why;
  EXPECT_NE(why.find("without pre-processing"), std::string::npos) << why;
}

TEST_F(ValidatorTest, TwoNodesInOneSlotNames4b) {
  task_.work = 15.0;
  schedule_.run = {{0, 3}, {1, 3}};
  const std::string why =
      validate_schedule(task_, schedule_, cluster_, kHorizon);
  EXPECT_NE(why.find("(4b)"), std::string::npos) << why;
}

TEST_F(ValidatorTest, SlotBeforeEarliestStartNames4c) {
  schedule_.run = {{0, 1}, {0, 3}, {1, 4}};  // slot 1 precedes arrival 2
  const std::string why =
      validate_schedule(task_, schedule_, cluster_, kHorizon);
  EXPECT_NE(why.find("(4c)"), std::string::npos) << why;
}

TEST_F(ValidatorTest, PrepDelayPushesEarliestStartNames4c) {
  task_.needs_prep = true;
  schedule_.vendor = 1;
  schedule_.prep_delay = 2;  // earliest start becomes 4; slots 2, 3 violate
  const std::string why =
      validate_schedule(task_, schedule_, cluster_, kHorizon);
  EXPECT_NE(why.find("(4c)"), std::string::npos) << why;
}

TEST_F(ValidatorTest, SlotAfterDeadlineNames4d) {
  schedule_.run = {{0, 2}, {0, 3}, {1, 7}};  // slot 7 exceeds deadline 6
  const std::string why =
      validate_schedule(task_, schedule_, cluster_, kHorizon);
  EXPECT_NE(why.find("(4d)"), std::string::npos) << why;
}

TEST_F(ValidatorTest, WorkShortfallNames4e) {
  schedule_.run = {{0, 2}};  // 10 of 25 samples
  const std::string why =
      validate_schedule(task_, schedule_, cluster_, kHorizon);
  EXPECT_NE(why.find("(4e)"), std::string::npos) << why;
  EXPECT_NE(why.find("shortfall"), std::string::npos) << why;
}

TEST_F(ValidatorTest, ShareOverrideCountsTowardWork) {
  // At share 0.125 the same three slots process only 15 samples: the
  // validator must price the override, not the task's own batch size.
  schedule_.share_override = 0.125;
  const std::string why =
      validate_schedule(task_, schedule_, cluster_, kHorizon);
  EXPECT_NE(why.find("(4e)"), std::string::npos) << why;
}

TEST_F(ValidatorTest, UnknownNodeRejected) {
  schedule_.run = {{5, 2}, {0, 3}, {1, 4}};
  const std::string why =
      validate_schedule(task_, schedule_, cluster_, kHorizon);
  EXPECT_NE(why.find("unknown node"), std::string::npos) << why;
}

TEST_F(ValidatorTest, SlotBeyondHorizonRejected) {
  task_.deadline = 20;
  schedule_.run = {{0, 2}, {0, 3}, {1, 12}};  // slot 12 >= horizon 10
  const std::string why =
      validate_schedule(task_, schedule_, cluster_, kHorizon);
  EXPECT_NE(why.find("beyond horizon"), std::string::npos) << why;
}

TEST_F(ValidatorTest, ForeignTaskIdRejected) {
  schedule_.task = 99;
  const std::string why =
      validate_schedule(task_, schedule_, cluster_, kHorizon);
  EXPECT_NE(why.find("belongs to task"), std::string::npos) << why;
}

TEST_F(ValidatorTest, RequireValidScheduleThrowsWithConstraintTag) {
  schedule_.run = {{0, 3}, {1, 3}};
  try {
    require_valid_schedule(task_, schedule_, cluster_, kHorizon);
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("(4b)"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace lorasched
