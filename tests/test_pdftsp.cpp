// Tests for Algorithm 1 (admission, dual updates, capacity control) and the
// vendor-selection loop of Algorithm 2.
#include "lorasched/core/pdftsp.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "lorasched/core/pricing.h"
#include "lorasched/workload/taskgen.h"
#include "test_helpers.h"

namespace lorasched {
namespace {

using testing::flat_energy;
using testing::make_task;
using testing::mini_cluster;

struct PdftspFixture : ::testing::Test {
  Cluster cluster = mini_cluster();
  EnergyModel energy = flat_energy();
  Slot horizon = 20;
  // Mild Lemma-2 parameters sized for the fixture tasks (bids <= 10, one to
  // few slots, 2-8 GB): see alpha_bound()/beta_bound() semantics.
  PdftspConfig config{.alpha = 20.0, .beta = 100.0, .welfare_unit = 8.0};
  Pdftsp policy{config, cluster, energy, horizon};
  CapacityLedger ledger{cluster, 20};
  std::vector<VendorQuote> no_quotes;
};

TEST_F(PdftspFixture, AdmitsProfitableTask) {
  const Task task = make_task(0, 0, 10, 1000.0, 2.0, 0.5, 10.0);
  const Decision d = policy.handle_task(task, no_quotes, ledger);
  ASSERT_TRUE(d.admit);
  EXPECT_EQ(d.task, 0);
  EXPECT_GT(d.schedule.run.size(), 0u);
  EXPECT_GE(d.payment, 0.0);
}

TEST_F(PdftspFixture, RejectsUnprofitableBid) {
  // Bid below even the flat energy cost of running the task.
  const Task task = make_task(0, 0, 10, 1000.0, 2.0, 0.5, 0.01);
  const Decision d = policy.handle_task(task, no_quotes, ledger);
  EXPECT_FALSE(d.admit);
}

TEST_F(PdftspFixture, RejectionLeavesDualsUntouched) {
  const Task task = make_task(0, 0, 10, 1000.0, 2.0, 0.5, 0.01);
  (void)policy.handle_task(task, no_quotes, ledger);
  for (NodeId k = 0; k < 2; ++k) {
    for (Slot t = 0; t < horizon; ++t) {
      EXPECT_EQ(policy.duals().lambda(k, t), 0.0);
      EXPECT_EQ(policy.duals().phi(k, t), 0.0);
    }
  }
}

TEST_F(PdftspFixture, AdmissionRaisesDualsOnBookedCells) {
  const Task task = make_task(0, 0, 10, 1000.0, 2.0, 0.5, 10.0);
  const Decision d = policy.handle_task(task, no_quotes, ledger);
  ASSERT_TRUE(d.admit);
  for (const Assignment& a : d.schedule.run) {
    EXPECT_GT(policy.duals().lambda(a.node, a.slot), 0.0);
    EXPECT_GT(policy.duals().phi(a.node, a.slot), 0.0);
  }
}

TEST_F(PdftspFixture, FirstTaskPaysOnlyPassThroughCosts) {
  // Duals start at zero, so the first winner pays only the vendor price
  // (zero here) plus the operational pass-through — the primal-dual cold
  // start.
  const Task task = make_task(0, 0, 10, 1000.0, 2.0, 0.5, 10.0);
  const Decision d = policy.handle_task(task, no_quotes, ledger);
  ASSERT_TRUE(d.admit);
  EXPECT_DOUBLE_EQ(d.payment, d.schedule.energy_cost);
}

TEST(PdftspSingleNode, LaterTasksPayPositiveResourcePrices) {
  // One node, window saturating tasks: the second winner must overlap the
  // first one's priced cells, so its payment is strictly positive.
  const Cluster cluster = mini_cluster(1);
  const EnergyModel energy = flat_energy();
  // Small alpha/beta so the second task stays admissible at the raised
  // prices (this test probes pricing, not capacity control).
  Pdftsp policy(PdftspConfig{.alpha = 0.5, .beta = 0.5, .welfare_unit = 5.0},
                cluster, energy, 20);
  CapacityLedger ledger(cluster, 20);
  const std::vector<VendorQuote> no_quotes;

  const Task first = make_task(0, 0, 10, 5500.0, 2.0, 0.5, 10.0);
  Decision d1 = policy.handle_task(first, no_quotes, ledger);
  ASSERT_TRUE(d1.admit);
  commit_decision(ledger, cluster, first, d1);
  EXPECT_DOUBLE_EQ(d1.payment, d1.schedule.energy_cost);

  const Task second = make_task(1, 0, 10, 5500.0, 2.0, 0.5, 10.0);
  const Decision d2 = policy.handle_task(second, no_quotes, ledger);
  ASSERT_TRUE(d2.admit);
  EXPECT_GT(d2.payment, d2.schedule.energy_cost);
}

TEST_F(PdftspFixture, PaymentNeverExceedsWelfareGainOfAdmittedBid) {
  // F(il) > 0 means b_il > price terms, so payment < bid - costs + vendor;
  // in particular utility b - p - ... stays positive (Thm. 4 mechanics).
  util::Rng rng(5);
  for (TaskId id = 0; id < 40; ++id) {
    Task task = make_task(id, static_cast<Slot>(rng.uniform_int(0, 8)), 0,
                          rng.uniform(500.0, 3000.0), rng.uniform(1.0, 5.0),
                          0.25, rng.uniform(0.5, 8.0));
    task.deadline = task.arrival + static_cast<Slot>(rng.uniform_int(4, 11));
    const Decision d = policy.handle_task(task, no_quotes, ledger);
    if (!d.admit) continue;
    commit_decision(ledger, cluster, task, d);
    EXPECT_LT(d.payment, task.bid + 1e-9) << "task " << id;
  }
}

TEST_F(PdftspFixture, CapacityControlBlocksSaturatedCells) {
  // Lemma 2: with alpha/beta at their population bounds, once a node-slot's
  // cumulative bookings reach capacity no further task lands there.
  // Memory is the scarce resource here: 16 GB adapter capacity, 8 GB each.
  std::vector<Task> population;
  for (TaskId id = 0; id < 30; ++id) {
    // All tasks want the same single-slot window on either node.
    population.push_back(make_task(id, 0, 0, 400.0, 8.0, 0.4, 10.0));
  }
  PdftspConfig tight;
  tight.alpha = alpha_bound(population, cluster);
  tight.beta = beta_bound(population, cluster);
  tight.welfare_unit = welfare_unit_estimate(population, cluster);
  Pdftsp controller(tight, cluster, energy, horizon);
  int admitted = 0;
  for (const Task& task : population) {
    const Decision d = controller.handle_task(task, no_quotes, ledger);
    if (d.admit) {
      commit_decision(ledger, cluster, task, d);
      ++admitted;
    }
  }
  // 2 nodes x 16 GB / 8 GB = at most 4 admissions; capacity control must
  // stop at (or before) that, never over-subscribing.
  EXPECT_LE(admitted, 4);
  EXPECT_GE(admitted, 1);
}

TEST_F(PdftspFixture, VendorLoopPicksBestTradeoff) {
  Task task = make_task(0, 0, 12, 1000.0, 2.0, 0.5, 10.0);
  task.needs_prep = true;
  // Vendor 0: cheap but slow (delay eats the window); vendor 1: pricier,
  // fast. Window is wide enough that the *cheap* vendor should win.
  std::vector<VendorQuote> quotes{{0.5, 4}, {2.0, 1}};
  const Pdftsp::Candidate best = policy.select_schedule(task, quotes);
  ASSERT_FALSE(best.schedule.empty());
  EXPECT_EQ(best.schedule.vendor, 0);
  EXPECT_DOUBLE_EQ(best.schedule.vendor_price, 0.5);
  EXPECT_EQ(best.schedule.prep_delay, 4);
  for (const Assignment& a : best.schedule.run) EXPECT_GE(a.slot, 4);
}

TEST_F(PdftspFixture, VendorLoopSwitchesWhenDeadlineTight) {
  Task task = make_task(0, 0, 4, 1500.0, 2.0, 0.5, 10.0);
  task.needs_prep = true;
  // Cheap vendor's delay 4 leaves 1 slot (500 < 1500): infeasible; the
  // fast vendor must be chosen despite its price.
  std::vector<VendorQuote> quotes{{0.5, 4}, {2.0, 1}};
  const Pdftsp::Candidate best = policy.select_schedule(task, quotes);
  ASSERT_FALSE(best.schedule.empty());
  EXPECT_EQ(best.schedule.vendor, 1);
}

TEST_F(PdftspFixture, PrepTaskWithNoFeasibleVendorRejected) {
  Task task = make_task(0, 0, 3, 1500.0, 2.0, 0.5, 10.0);
  task.needs_prep = true;
  std::vector<VendorQuote> quotes{{0.5, 5}, {2.0, 4}};  // both delays too long
  const Decision d = policy.handle_task(task, quotes, ledger);
  EXPECT_FALSE(d.admit);
}

TEST_F(PdftspFixture, PaymentUsesPreUpdateDuals) {
  // Handle one task to move the duals, remember them, then verify the next
  // admitted task's payment matches eq. (14) at the *pre-update* values.
  Task first = make_task(0, 0, 10, 4000.0, 2.0, 0.5, 10.0);
  Decision d1 = policy.handle_task(first, no_quotes, ledger);
  ASSERT_TRUE(d1.admit);
  commit_decision(ledger, cluster, first, d1);

  Task second = make_task(1, 0, 10, 4000.0, 2.0, 0.5, 10.0);
  // Snapshot duals before handling.
  DualState snapshot(2, horizon);
  for (NodeId k = 0; k < 2; ++k) {
    for (Slot t = 0; t < horizon; ++t) {
      snapshot.set_lambda(k, t, policy.duals().lambda(k, t));
      snapshot.set_phi(k, t, policy.duals().phi(k, t));
    }
  }
  const Decision d2 = policy.handle_task(second, no_quotes, ledger);
  if (d2.admit) {
    EXPECT_NEAR(d2.payment, payment(d2.schedule, snapshot), 1e-9);
  }
}

TEST_F(PdftspFixture, OnSlotProcessesBatchInOrder) {
  std::vector<Task> arrivals{make_task(0, 0, 10, 800.0, 2.0, 0.5, 8.0),
                             make_task(1, 0, 10, 800.0, 2.0, 0.5, 8.0)};
  Marketplace market({}, 3);
  const SlotContext ctx{0, arrivals, cluster, energy, market, ledger};
  const auto decisions = policy.on_slot(ctx);
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_EQ(decisions[0].task, 0);
  EXPECT_EQ(decisions[1].task, 1);
}

TEST(Pdftsp, RejectsNonPositiveParameters) {
  const Cluster cluster = mini_cluster();
  const EnergyModel energy = flat_energy();
  EXPECT_THROW(Pdftsp(PdftspConfig{.alpha = 0.0}, cluster, energy, 10),
               std::invalid_argument);
  EXPECT_THROW(Pdftsp(PdftspConfig{.beta = -2.0}, cluster, energy, 10),
               std::invalid_argument);
  EXPECT_THROW(Pdftsp(PdftspConfig{.welfare_unit = 0.0}, cluster, energy, 10),
               std::invalid_argument);
}

TEST(Pdftsp, NameIsStable) {
  const Cluster cluster = mini_cluster();
  const EnergyModel energy = flat_energy();
  Pdftsp policy(PdftspConfig{}, cluster, energy, 10);
  EXPECT_EQ(policy.name(), "pdFTSP");
}

}  // namespace
}  // namespace lorasched
