// Decision tracing: the JSONL schema round-trips exactly, the tracer's
// aggregates match the stream it wrote, and — the load-bearing contract —
// attaching a trace sink is observation-only: a traced policy makes
// bit-identical decisions (admissions, payments, welfare) to an untraced
// one, both through the batch engine and the streaming service.
#include "lorasched/obs/trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lorasched/core/online_params.h"
#include "lorasched/core/pdftsp.h"
#include "lorasched/service/admission_service.h"
#include "lorasched/sim/engine.h"
#include "test_helpers.h"

namespace lorasched::obs {
namespace {

DecisionTraceRecord sample_record() {
  DecisionTraceRecord record;
  record.task = 17;
  record.arrival = 3;
  record.bid = 0.1;  // 17-digit round-trip material
  record.needs_prep = true;
  CandidateTrace own;
  own.vendor = kNoVendor;
  own.feasible = true;
  own.objective = 0.25;
  own.energy_cost = 0.05;
  own.welfare_gain = 0.3;
  own.norm_compute = 1.5;
  own.norm_mem = 0.75;
  own.start = 4;
  own.completion = 9;
  own.slots = 6;
  CandidateTrace vend;
  vend.vendor = 2;
  vend.vendor_price = 0.02;
  vend.prep_delay = 1;
  vend.share = 0.5;
  vend.feasible = false;
  record.candidates = {own, vend};
  record.chosen = 0;
  record.objective = 0.25;
  record.admitted = true;
  record.duals = {{0, 4, 0.001, 0.002}, {0, 5, 0.0, 0.004}};
  record.payment.vendor = 0.0;
  record.payment.energy = 0.05;
  record.payment.compute = 0.0015;
  record.payment.memory = 0.003;
  record.payment.total = 0.0545;
  record.payment.charged = 0.0545;
  record.payment.max_lambda = 0.001;
  record.payment.max_phi = 0.004;
  return record;
}

void expect_same_record(const DecisionTraceRecord& a,
                        const DecisionTraceRecord& b) {
  EXPECT_EQ(a.task, b.task);
  EXPECT_EQ(a.arrival, b.arrival);
  EXPECT_EQ(a.bid, b.bid);
  EXPECT_EQ(a.needs_prep, b.needs_prep);
  EXPECT_EQ(a.chosen, b.chosen);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.capacity_reject, b.capacity_reject);
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    SCOPED_TRACE(i);
    const CandidateTrace& x = a.candidates[i];
    const CandidateTrace& y = b.candidates[i];
    EXPECT_EQ(x.vendor, y.vendor);
    EXPECT_EQ(x.vendor_price, y.vendor_price);
    EXPECT_EQ(x.prep_delay, y.prep_delay);
    EXPECT_EQ(x.share, y.share);
    EXPECT_EQ(x.feasible, y.feasible);
    EXPECT_EQ(x.objective, y.objective);
    EXPECT_EQ(x.energy_cost, y.energy_cost);
    EXPECT_EQ(x.welfare_gain, y.welfare_gain);
    EXPECT_EQ(x.norm_compute, y.norm_compute);
    EXPECT_EQ(x.norm_mem, y.norm_mem);
    EXPECT_EQ(x.start, y.start);
    EXPECT_EQ(x.completion, y.completion);
    EXPECT_EQ(x.slots, y.slots);
  }
  ASSERT_EQ(a.duals.size(), b.duals.size());
  for (std::size_t i = 0; i < a.duals.size(); ++i) {
    EXPECT_EQ(a.duals[i].node, b.duals[i].node);
    EXPECT_EQ(a.duals[i].slot, b.duals[i].slot);
    EXPECT_EQ(a.duals[i].lambda, b.duals[i].lambda);
    EXPECT_EQ(a.duals[i].phi, b.duals[i].phi);
  }
  EXPECT_EQ(a.payment.vendor, b.payment.vendor);
  EXPECT_EQ(a.payment.energy, b.payment.energy);
  EXPECT_EQ(a.payment.compute, b.payment.compute);
  EXPECT_EQ(a.payment.memory, b.payment.memory);
  EXPECT_EQ(a.payment.total, b.payment.total);
  EXPECT_EQ(a.payment.charged, b.payment.charged);
  EXPECT_EQ(a.payment.max_lambda, b.payment.max_lambda);
  EXPECT_EQ(a.payment.max_phi, b.payment.max_phi);
}

TEST(TraceSchema, JsonRoundTripIsExact) {
  const DecisionTraceRecord record = sample_record();
  const Json json = decision_to_json(record);
  expect_same_record(decision_from_json(json), record);
  // And through the serialized text, which is what JSONL consumers see.
  expect_same_record(parse_decision_line(json.dump()), record);
}

TEST(TraceSchema, ParseRejectsSchemaViolations) {
  EXPECT_THROW((void)parse_decision_line("not json"), std::invalid_argument);
  EXPECT_THROW((void)parse_decision_line("{}"), std::invalid_argument);
  // A structurally valid object with a wrong-typed member.
  Json json = decision_to_json(sample_record());
  json.as_object()["task"] = Json("seventeen");
  EXPECT_THROW((void)decision_from_json(json), std::invalid_argument);
}

TEST(DecisionTracer, StreamsJsonlAndAggregates) {
  std::ostringstream out;
  DecisionTracer tracer(&out);
  DecisionTraceRecord admitted = sample_record();
  DecisionTraceRecord rejected = sample_record();
  rejected.task = 18;
  rejected.admitted = false;
  rejected.payment.charged = 0.0;
  tracer.on_decision(admitted);
  tracer.on_decision(rejected);
  tracer.flush();

  EXPECT_EQ(tracer.records(), 2u);
  EXPECT_EQ(tracer.admitted(), 1u);
  ASSERT_EQ(tracer.instants().size(), 2u);
  EXPECT_TRUE(tracer.instants()[0].admitted);
  EXPECT_FALSE(tracer.instants()[1].admitted);

  std::istringstream in(out.str());
  std::string line;
  std::vector<DecisionTraceRecord> parsed;
  while (std::getline(in, line)) parsed.push_back(parse_decision_line(line));
  ASSERT_EQ(parsed.size(), 2u);
  expect_same_record(parsed[0], admitted);
  expect_same_record(parsed[1], rejected);
}

TEST(DecisionTracer, InstantBufferIsBounded) {
  DecisionTracer tracer(nullptr, 2);
  for (int i = 0; i < 5; ++i) tracer.on_decision(sample_record());
  EXPECT_EQ(tracer.records(), 5u);
  EXPECT_EQ(tracer.instants().size(), 2u);
  EXPECT_EQ(tracer.instants_dropped(), 3u);
}

TEST(ChromeTrace, EmitsParseableEventsForDecisions) {
  std::vector<DecisionInstant> decisions(2);
  decisions[0].ts_ns = 1000;
  decisions[0].task = 1;
  decisions[0].admitted = true;
  decisions[1].ts_ns = 3000;
  decisions[1].task = 2;
  std::ostringstream out;
  write_chrome_trace(out, decisions);
  const Json doc = Json::parse(out.str());
  const Json::Array& events = doc.at("traceEvents").as_array();
  ASSERT_GE(events.size(), 2u);
  for (const Json& event : events) {
    EXPECT_NO_THROW((void)event.at("ph").as_string());
    EXPECT_NO_THROW((void)event.at("ts").as_number());
  }
}

}  // namespace
}  // namespace lorasched::obs

namespace lorasched {
namespace {

using obs::DecisionTraceRecord;
using obs::DecisionTracer;

Instance trace_instance(std::uint64_t seed = 42) {
  return make_instance(testing::small_scenario(seed));
}

void expect_identical_results(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.metrics.social_welfare, b.metrics.social_welfare);
  EXPECT_EQ(a.metrics.total_payments, b.metrics.total_payments);
  EXPECT_EQ(a.metrics.admitted, b.metrics.admitted);
  EXPECT_EQ(a.metrics.rejected, b.metrics.rejected);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a.outcomes[i].task, b.outcomes[i].task);
    EXPECT_EQ(a.outcomes[i].admitted, b.outcomes[i].admitted);
    EXPECT_EQ(a.outcomes[i].payment, b.outcomes[i].payment);
    EXPECT_EQ(a.outcomes[i].vendor, b.outcomes[i].vendor);
    EXPECT_EQ(a.outcomes[i].completion, b.outcomes[i].completion);
  }
}

TEST(TracingEquivalence, EngineDecisionsAreBitIdenticalWithTracing) {
  const Instance instance = trace_instance();

  Pdftsp plain(pdftsp_config_for(instance), instance.cluster, instance.energy,
               instance.horizon);
  const SimResult baseline = run_simulation(instance, plain);

  Pdftsp traced(pdftsp_config_for(instance), instance.cluster, instance.energy,
                instance.horizon);
  std::ostringstream jsonl;
  DecisionTracer tracer(&jsonl);
  traced.set_trace_sink(&tracer);
  const SimResult observed = run_simulation(instance, traced);

  expect_identical_results(baseline, observed);
  EXPECT_EQ(tracer.records(), baseline.outcomes.size());
  EXPECT_EQ(tracer.admitted(),
            static_cast<std::uint64_t>(baseline.metrics.admitted));
}

TEST(TracingEquivalence, AdaptivePolicyForwardsSinkAndStaysIdentical) {
  const Instance instance = trace_instance(7);

  AdaptivePdftsp plain(OnlineParamEstimator::Config{}, instance.cluster,
                       instance.energy, instance.horizon);
  const SimResult baseline = run_simulation(instance, plain);

  AdaptivePdftsp traced(OnlineParamEstimator::Config{}, instance.cluster,
                        instance.energy, instance.horizon);
  DecisionTracer tracer;
  traced.set_trace_sink(&tracer);
  const SimResult observed = run_simulation(instance, traced);

  expect_identical_results(baseline, observed);
  EXPECT_EQ(tracer.records(), baseline.outcomes.size());
}

TEST(TracingEquivalence, ServiceDecisionsAreBitIdenticalWithTracing) {
  const Instance instance = trace_instance(11);

  const auto serve = [&instance](DecisionTracer* tracer) {
    Pdftsp policy(pdftsp_config_for(instance), instance.cluster,
                  instance.energy, instance.horizon);
    if (tracer != nullptr) policy.set_trace_sink(tracer);
    service::ServiceConfig config;
    config.time_decisions = false;
    service::AdmissionService server(instance, policy, config);
    for (const Task& task : instance.tasks) (void)server.submit(task);
    server.close();
    server.run(std::chrono::nanoseconds{0});
    return server.finish();
  };

  const SimResult baseline = serve(nullptr);
  DecisionTracer tracer;
  const SimResult observed = serve(&tracer);
  expect_identical_results(baseline, observed);
  EXPECT_EQ(tracer.records(), baseline.outcomes.size());
}

TEST(TraceContent, RecordsExplainEveryDecision) {
  const Instance instance = trace_instance(5);
  Pdftsp policy(pdftsp_config_for(instance), instance.cluster, instance.energy,
                instance.horizon);
  std::ostringstream jsonl;
  DecisionTracer tracer(&jsonl);
  policy.set_trace_sink(&tracer);
  const SimResult result = run_simulation(instance, policy);

  std::map<TaskId, const TaskOutcome*> outcomes;
  for (const TaskOutcome& outcome : result.outcomes) {
    outcomes[outcome.task] = &outcome;
  }

  std::istringstream in(jsonl.str());
  std::string line;
  std::size_t records = 0;
  while (std::getline(in, line)) {
    const DecisionTraceRecord record = obs::parse_decision_line(line);
    ++records;
    ASSERT_NE(outcomes.count(record.task), 0u) << "unknown task in trace";
    const TaskOutcome& outcome = *outcomes[record.task];

    // Alg. 2's candidate sweep is always recorded.
    ASSERT_FALSE(record.candidates.empty());
    EXPECT_EQ(record.admitted, outcome.admitted);
    EXPECT_EQ(record.bid, outcome.bid);

    // Eq. (14): components sum to total; admitted bids are charged exactly
    // the engine's committed payment, rejected bids are charged nothing.
    const obs::PaymentTrace& pay = record.payment;
    EXPECT_NEAR(pay.total, pay.vendor + pay.energy + pay.compute + pay.memory,
                1e-12);
    if (record.admitted) {
      EXPECT_EQ(pay.charged, outcome.payment);
      ASSERT_GE(record.chosen, 0);
      ASSERT_LT(static_cast<std::size_t>(record.chosen),
                record.candidates.size());
      const obs::CandidateTrace& chosen =
          record.candidates[static_cast<std::size_t>(record.chosen)];
      EXPECT_TRUE(chosen.feasible);
      EXPECT_EQ(chosen.vendor, outcome.vendor);
      EXPECT_EQ(chosen.completion, outcome.completion);
      EXPECT_EQ(chosen.slots, outcome.slots_used);
      // Eq. (10): admission requires a strictly positive objective.
      EXPECT_GT(record.objective, 0.0);
      // The sampled duals cover the chosen schedule's cells, and the
      // payment's max prices are attained on those cells.
      ASSERT_EQ(record.duals.size(),
                static_cast<std::size_t>(chosen.slots));
      double max_lambda = 0.0;
      double max_phi = 0.0;
      for (const obs::DualCellSample& cell : record.duals) {
        max_lambda = std::max(max_lambda, cell.lambda);
        max_phi = std::max(max_phi, cell.phi);
      }
      EXPECT_EQ(pay.max_lambda, max_lambda);
      EXPECT_EQ(pay.max_phi, max_phi);
    } else {
      EXPECT_EQ(pay.charged, 0.0);
      if (!record.capacity_reject) {
        // A plain price-out: no feasible positive-objective candidate.
        EXPECT_LE(record.objective, 0.0);
      }
    }
  }
  EXPECT_EQ(records, result.outcomes.size());
}

TEST(TraceContent, DetachingTheSinkStopsEmission) {
  const Instance instance = trace_instance(3);
  Pdftsp policy(pdftsp_config_for(instance), instance.cluster, instance.energy,
                instance.horizon);
  DecisionTracer tracer;
  policy.set_trace_sink(&tracer);
  policy.set_trace_sink(nullptr);
  (void)run_simulation(instance, policy);
  EXPECT_EQ(tracer.records(), 0u);
}

}  // namespace
}  // namespace lorasched
