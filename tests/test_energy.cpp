#include "lorasched/cluster/energy.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_helpers.h"

namespace lorasched {
namespace {

using testing::make_task;
using testing::mini_cluster;

TEST(EnergyModel, DiurnalPeakAndTrough) {
  EnergyModel model;  // defaults: peak at slot 90, 144-slot day
  const double peak = model.tou_multiplier(90);
  const double trough = model.tou_multiplier(90 + 72);  // half a day away
  EXPECT_NEAR(peak, 1.4, 1e-9);
  EXPECT_NEAR(trough, 0.6, 1e-9);
  // Everything in between stays inside the band.
  for (Slot t = 0; t < 144; ++t) {
    EXPECT_GE(model.tou_multiplier(t), 0.6 - 1e-9);
    EXPECT_LE(model.tou_multiplier(t), 1.4 + 1e-9);
  }
}

TEST(EnergyModel, FlatConfigIsTimeInvariant) {
  const EnergyModel model = testing::flat_energy();
  EXPECT_DOUBLE_EQ(model.tou_multiplier(0), model.tou_multiplier(77));
}

TEST(EnergyModel, CostProportionalToComputeShare) {
  const Cluster cluster = mini_cluster();
  const EnergyModel model = testing::flat_energy();
  Task half = make_task(0, 0, 10, 100.0, 2.0, 0.5);
  Task quarter = make_task(1, 0, 10, 100.0, 2.0, 0.25);
  const Money c_half = model.cost(half, cluster, 0, 3);
  const Money c_quarter = model.cost(quarter, cluster, 0, 3);
  EXPECT_NEAR(c_half, 2.0 * c_quarter, 1e-12);
}

TEST(EnergyModel, FullNodeCostMatchesHourlyRate) {
  const Cluster cluster = mini_cluster();  // hourly_cost 1.2
  const EnergyModel model = testing::flat_energy();
  // Multiplier 1.0, 10 minutes per slot: 1.2 / 6 = 0.2.
  EXPECT_NEAR(model.full_node_cost(cluster, 0, 5), 0.2, 1e-12);
}

TEST(EnergyModel, PeakSlotsCostMoreThanOffPeak) {
  const Cluster cluster = mini_cluster();
  const EnergyModel model;  // diurnal defaults
  const Task task = make_task(0, 0, 143, 100.0);
  EXPECT_GT(model.cost(task, cluster, 0, 90), model.cost(task, cluster, 0, 18));
}

TEST(EnergyModel, RejectsInvalidConfig) {
  EnergyModel::Config bad;
  bad.peak_multiplier = 0.1;
  bad.off_peak_multiplier = 0.5;
  EXPECT_THROW(EnergyModel{bad}, std::invalid_argument);
  EnergyModel::Config zero_grid;
  zero_grid.slots_per_day = 0;
  EXPECT_THROW(EnergyModel{zero_grid}, std::invalid_argument);
}

TEST(EnergyModel, PeriodicAcrossDays) {
  const EnergyModel model;
  EXPECT_NEAR(model.tou_multiplier(10), model.tou_multiplier(10 + 144), 1e-9);
}

}  // namespace
}  // namespace lorasched
