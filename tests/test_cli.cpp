#include "lorasched/util/cli.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lorasched::util {
namespace {

Cli make_cli(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, SpaceSeparatedValue) {
  const Cli cli = make_cli({"--nodes", "100"});
  EXPECT_EQ(cli.get_int("nodes", 0), 100);
}

TEST(Cli, EqualsSeparatedValue) {
  const Cli cli = make_cli({"--rate=2.5"});
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 2.5);
}

TEST(Cli, BooleanSwitch) {
  const Cli cli = make_cli({"--csv"});
  EXPECT_TRUE(cli.get_bool("csv", false));
  EXPECT_TRUE(cli.has("csv"));
}

TEST(Cli, BooleanBeforeAnotherFlag) {
  const Cli cli = make_cli({"--csv", "--nodes", "5"});
  EXPECT_TRUE(cli.get_bool("csv", false));
  EXPECT_EQ(cli.get_int("nodes", 0), 5);
}

TEST(Cli, FallbacksWhenAbsent) {
  const Cli cli = make_cli({});
  EXPECT_EQ(cli.get("name", "dflt"), "dflt");
  EXPECT_EQ(cli.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 1.5), 1.5);
  EXPECT_FALSE(cli.get_bool("b", false));
  EXPECT_FALSE(cli.has("b"));
}

TEST(Cli, RejectsPositionalArguments) {
  EXPECT_THROW(make_cli({"positional"}), std::invalid_argument);
}

TEST(Cli, AllowOnlyAcceptsKnownFlags) {
  const Cli cli = make_cli({"--nodes", "5"});
  EXPECT_NO_THROW(cli.allow_only({"nodes", "rate"}));
}

TEST(Cli, AllowOnlyRejectsUnknownFlags) {
  const Cli cli = make_cli({"--typo", "5"});
  EXPECT_THROW(cli.allow_only({"nodes"}), std::invalid_argument);
}

TEST(Cli, BoolStringVariants) {
  EXPECT_TRUE(make_cli({"--f=1"}).get_bool("f", false));
  EXPECT_TRUE(make_cli({"--f=yes"}).get_bool("f", false));
  EXPECT_FALSE(make_cli({"--f=no"}).get_bool("f", true));
}

TEST(Cli, ProgramNameCaptured) {
  const Cli cli = make_cli({});
  EXPECT_EQ(cli.program(), "prog");
}

}  // namespace
}  // namespace lorasched::util
