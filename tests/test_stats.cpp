#include "lorasched/util/stats.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace lorasched::util {
namespace {

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_EQ(mean({}), 0.0);
}

TEST(Stats, BasicDescriptives) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(sum(v), 10.0);
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(variance(v), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(min_value(v), 1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 4.0);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  const std::vector<double> v{5.0};
  EXPECT_EQ(variance(v), 0.0);
  EXPECT_EQ(stddev(v), 0.0);
}

TEST(Stats, PercentileEndpointsAndMedian) {
  const std::vector<double> v{3.0, 1.0, 2.0, 5.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Stats, PercentileRejectsBadInput) {
  EXPECT_THROW((void)percentile({}, 50.0), std::invalid_argument);
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)percentile(v, -1.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(v, 101.0), std::invalid_argument);
}

TEST(Stats, EmpiricalCdfMonotoneAndEndsAtOne) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  const auto cdf = empirical_cdf(v);
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 4.0);
}

TEST(Stats, EmpiricalCdfDownsamples) {
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  const auto cdf = empirical_cdf(v, 10);
  EXPECT_LE(cdf.size(), 12u);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(Stats, EmpiricalCdfEmptySample) {
  EXPECT_TRUE(empirical_cdf({}).empty());
}

TEST(RunningStats, MatchesBatchComputation) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(v), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace lorasched::util
