#include "lorasched/solver/simplex.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lorasched::solver {
namespace {

TEST(LpProblem, AddRowReturnsIndex) {
  LpProblem lp;
  lp.objective = {1.0, 1.0};
  EXPECT_EQ(lp.add_row({{0, 1.0}}, 5.0), 0);
  EXPECT_EQ(lp.add_row({{1, 1.0}}, 5.0), 1);
  EXPECT_EQ(lp.num_vars(), 2);
  EXPECT_EQ(lp.num_rows(), 2);
}

TEST(LpProblem, ValidateRejectsNegativeRhs) {
  LpProblem lp;
  lp.objective = {1.0};
  lp.add_row({{0, 1.0}}, -1.0);
  EXPECT_THROW(lp.validate(), std::invalid_argument);
}

TEST(LpProblem, ValidateRejectsUnknownVariable) {
  LpProblem lp;
  lp.objective = {1.0};
  lp.add_row({{3, 1.0}}, 1.0);
  EXPECT_THROW(lp.validate(), std::invalid_argument);
}

TEST(LpProblem, ValidateRejectsRepeatedVariable) {
  LpProblem lp;
  lp.objective = {1.0};
  lp.add_row({{0, 1.0}, {0, 2.0}}, 1.0);
  EXPECT_THROW(lp.validate(), std::invalid_argument);
}

TEST(Simplex, SolvesTextbookTwoVariableLp) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> x=2, y=6, obj=36.
  LpProblem lp;
  lp.objective = {3.0, 5.0};
  lp.add_row({{0, 1.0}}, 4.0);
  lp.add_row({{1, 2.0}}, 12.0);
  lp.add_row({{0, 3.0}, {1, 2.0}}, 18.0);
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 36.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 6.0, 1e-9);
}

TEST(Simplex, DualsAreShadowPrices) {
  // Same textbook LP; known duals: y1=0, y2=1.5, y3=1.
  LpProblem lp;
  lp.objective = {3.0, 5.0};
  lp.add_row({{0, 1.0}}, 4.0);
  lp.add_row({{1, 2.0}}, 12.0);
  lp.add_row({{0, 3.0}, {1, 2.0}}, 18.0);
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.duals[0], 0.0, 1e-9);
  EXPECT_NEAR(sol.duals[1], 1.5, 1e-9);
  EXPECT_NEAR(sol.duals[2], 1.0, 1e-9);
}

TEST(Simplex, StrongDualityHolds) {
  LpProblem lp;
  lp.objective = {2.0, 4.0, 1.0};
  lp.add_row({{0, 1.0}, {1, 2.0}, {2, 1.0}}, 10.0);
  lp.add_row({{0, 3.0}, {1, 1.0}}, 9.0);
  lp.add_row({{1, 1.0}, {2, 4.0}}, 8.0);
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  double dual_obj = 0.0;
  const double rhs[] = {10.0, 9.0, 8.0};
  for (int i = 0; i < 3; ++i) dual_obj += rhs[i] * sol.duals[i];
  EXPECT_NEAR(dual_obj, sol.objective, 1e-8);
}

TEST(Simplex, DetectsUnbounded) {
  LpProblem lp;
  lp.objective = {1.0, 0.0};
  lp.add_row({{1, 1.0}}, 5.0);  // x0 unconstrained above
  const LpSolution sol = solve_lp(lp);
  EXPECT_EQ(sol.status, LpStatus::kUnbounded);
}

TEST(Simplex, ZeroObjectiveIsTriviallyOptimal) {
  LpProblem lp;
  lp.objective = {0.0};
  lp.add_row({{0, 1.0}}, 1.0);
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 0.0, 1e-12);
}

TEST(Simplex, NoConstraintsOnNegativeCostVariable) {
  // max -x with x >= 0 -> x = 0.
  LpProblem lp;
  lp.objective = {-1.0};
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 0.0, 1e-12);
}

TEST(Simplex, HandlesDegenerateBasis) {
  // Degenerate vertex (redundant constraints meeting at the optimum).
  LpProblem lp;
  lp.objective = {1.0, 1.0};
  lp.add_row({{0, 1.0}}, 2.0);
  lp.add_row({{1, 1.0}}, 2.0);
  lp.add_row({{0, 1.0}, {1, 1.0}}, 4.0);  // redundant at optimum
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 4.0, 1e-9);
}

TEST(Simplex, FractionalKnapsackRelaxation) {
  // max 10a + 6b + 4c s.t. a+b+c <= 2, 5a+4b+3c <= 7, binary relaxed to
  // a,b,c <= 1. Greedy by density on the binding row: a=1, b=0.5 -> 13.
  LpProblem lp;
  lp.objective = {10.0, 6.0, 4.0};
  lp.add_row({{0, 1.0}, {1, 1.0}, {2, 1.0}}, 2.0);
  lp.add_row({{0, 5.0}, {1, 4.0}, {2, 3.0}}, 7.0);
  lp.add_row({{0, 1.0}}, 1.0);
  lp.add_row({{1, 1.0}}, 1.0);
  lp.add_row({{2, 1.0}}, 1.0);
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 13.0, 1e-8);
}

TEST(Simplex, MediumRandomPackingSolves) {
  // A 40-var, 25-row random packing LP: sanity for scale and termination.
  LpProblem lp;
  std::uint64_t state = 12345;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>((state >> 33) & 0xffff) / 65535.0;
  };
  for (int j = 0; j < 40; ++j) lp.objective.push_back(1.0 + next());
  for (int i = 0; i < 25; ++i) {
    LpProblem::Row row;
    for (int j = 0; j < 40; ++j) {
      if (next() < 0.3) row.coeffs.emplace_back(j, 0.2 + next());
    }
    row.rhs = 3.0 + next();
    lp.rows.push_back(row);
  }
  for (int j = 0; j < 40; ++j) lp.add_row({{j, 1.0}}, 1.0);
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_GT(sol.objective, 0.0);
  // Primal feasibility of the returned point.
  for (const auto& row : lp.rows) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : row.coeffs) {
      lhs += coeff * sol.x[static_cast<std::size_t>(var)];
    }
    EXPECT_LE(lhs, row.rhs + 1e-7);
  }
}

}  // namespace
}  // namespace lorasched::solver
