// Tests for the batch-size co-adaptation extension: Algorithm 2 may run a
// task at a provider-chosen compute share (Schedule::share_override)
// instead of the user's batch size.
#include <gtest/gtest.h>

#include "lorasched/core/pdftsp.h"
#include "lorasched/experiments/scenario.h"
#include "lorasched/sim/engine.h"
#include "lorasched/sim/validator.h"
#include "test_helpers.h"

namespace lorasched {
namespace {

using testing::flat_energy;
using testing::make_task;
using testing::mini_cluster;

TEST(ShareAdaptation, ScheduleRateHonoursOverride) {
  const Cluster cluster = mini_cluster();  // C = 1000
  const Task task = make_task(0, 0, 10, 900.0, 2.0, 0.25);
  Schedule plain;
  EXPECT_DOUBLE_EQ(schedule_rate(plain, task, cluster, 0), 250.0);
  Schedule boosted;
  boosted.share_override = 0.5;
  EXPECT_DOUBLE_EQ(schedule_rate(boosted, task, cluster, 0), 500.0);
}

TEST(ShareAdaptation, FinalizeAccountsAtEffectiveShare) {
  const Cluster cluster = mini_cluster();
  const EnergyModel energy = flat_energy();
  const Task task = make_task(0, 0, 10, 900.0, 2.0, 0.25, 8.0);
  Schedule schedule;
  schedule.task = 0;
  schedule.share_override = 0.5;
  schedule.run = {{0, 1}, {0, 2}};
  finalize_schedule(schedule, task, cluster, energy);
  EXPECT_DOUBLE_EQ(schedule.total_compute, 1000.0);  // 2 x 500, not 2 x 250
  EXPECT_DOUBLE_EQ(schedule.norm_compute, 1.0);
  // Energy scales with the share too: 2 slots * 0.2 * 0.5.
  EXPECT_NEAR(schedule.energy_cost, 0.2, 1e-12);
}

TEST(ShareAdaptation, ValidatorUsesEffectiveRate) {
  const Cluster cluster = mini_cluster();
  const Task task = make_task(0, 0, 10, 900.0, 2.0, 0.25);
  // 2 slots at the user's share (250/slot) fall short of 900...
  Schedule slow;
  slow.task = 0;
  slow.run = {{0, 1}, {0, 2}};
  EXPECT_NE(validate_schedule(task, slow, cluster, 20), "");
  // ...but clear it at the boosted share.
  Schedule fast = slow;
  fast.share_override = 0.5;
  EXPECT_EQ(validate_schedule(task, fast, cluster, 20), "");
}

TEST(ShareAdaptation, TightDeadlineOnlyFeasibleWithBoost) {
  // Work 1800 in a 2-slot window: impossible at share 0.25 (500 total),
  // possible at share 1.0 (2000). Without share options the task is
  // rejected; with them it is admitted at the boosted share.
  const Cluster cluster = mini_cluster(1);
  const EnergyModel energy = flat_energy();
  const Task task = make_task(0, 0, 1, 1800.0, 2.0, 0.25, 8.0);
  CapacityLedger ledger(cluster, 10);
  const std::vector<VendorQuote> no_quotes;

  PdftspConfig base{.alpha = 1.0, .beta = 1.0, .welfare_unit = 5.0};
  Pdftsp rigid(base, cluster, energy, 10);
  EXPECT_FALSE(rigid.handle_task(task, no_quotes, ledger).admit);

  PdftspConfig adaptive = base;
  adaptive.share_options = {0.5, 1.0};
  Pdftsp flexible(adaptive, cluster, energy, 10);
  const Decision d = flexible.handle_task(task, no_quotes, ledger);
  ASSERT_TRUE(d.admit);
  EXPECT_DOUBLE_EQ(d.schedule.share_override, 1.0);
  require_valid_schedule(task, d.schedule, cluster, 10);
}

TEST(ShareAdaptation, EngineAcceptsOverriddenSchedules) {
  // End-to-end: the engine validates, books, and accounts the boosted run.
  std::vector<Task> tasks{make_task(0, 0, 1, 1800.0, 2.0, 0.25, 8.0)};
  Instance instance(mini_cluster(1), flat_energy(),
                    Marketplace(Marketplace::Config{}, 1), 10,
                    std::move(tasks));
  PdftspConfig config{.alpha = 1.0, .beta = 1.0, .welfare_unit = 5.0};
  config.share_options = {1.0};
  Pdftsp policy(config, instance.cluster, instance.energy, instance.horizon);
  const SimResult result = run_simulation(instance, policy);
  ASSERT_EQ(result.metrics.admitted, 1);
  EXPECT_DOUBLE_EQ(result.schedules[0].share_override, 1.0);
  // 1800 samples of 1000/slot x 2 slots booked = 90% of those cells.
  EXPECT_GT(result.metrics.utilization, 0.0);
}

TEST(ShareAdaptation, NeverWorseOnRealWorkload) {
  // Adding options can only enlarge Alg. 2's candidate set per task, so a
  // run with options should not collapse; on tight-deadline workloads it
  // typically admits more. (Not a per-instance guarantee — the dual
  // trajectory changes — so assert a generous lower bound.)
  ScenarioConfig scenario = testing::small_scenario(73);
  scenario.arrival_rate = 3.0;
  scenario.deadline = DeadlineKind::kTight;
  const Instance instance = make_instance(scenario);

  PdftspConfig base = pdftsp_config_for(instance);
  Pdftsp rigid(base, instance.cluster, instance.energy, instance.horizon);
  PdftspConfig with_options = base;
  with_options.share_options = {0.25, 0.5};
  Pdftsp flexible(with_options, instance.cluster, instance.energy,
                  instance.horizon);

  const Metrics rigid_m = run_simulation(instance, rigid).metrics;
  const Metrics flexible_m = run_simulation(instance, flexible).metrics;
  EXPECT_GT(flexible_m.social_welfare, 0.6 * rigid_m.social_welfare);
}

}  // namespace
}  // namespace lorasched
