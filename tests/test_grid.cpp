// Cross-configuration invariant sweep: every (fleet, deadline, arrival
// shape) cell of the configuration grid must produce a clean, economically
// sound auction run. Complements test_properties.cpp's per-seed sweeps.
#include <gtest/gtest.h>

#include <optional>
#include <tuple>

#include "lorasched/core/pdftsp.h"
#include "lorasched/experiments/scenario.h"
#include "lorasched/sim/engine.h"
#include "test_helpers.h"

namespace lorasched {
namespace {

using GridParam =
    std::tuple<FleetKind, DeadlineKind, std::optional<TraceKind>>;

class ConfigGrid : public ::testing::TestWithParam<GridParam> {
 protected:
  Instance make() const {
    ScenarioConfig config = testing::small_scenario(71);
    config.arrival_rate = 3.0;
    config.fleet = std::get<0>(GetParam());
    config.deadline = std::get<1>(GetParam());
    config.trace = std::get<2>(GetParam());
    return make_instance(config);
  }
};

TEST_P(ConfigGrid, AuctionRunsCleanly) {
  const Instance instance = make();
  Pdftsp policy(pdftsp_config_for(instance), instance.cluster, instance.energy,
                instance.horizon);
  const SimResult result = run_simulation(instance, policy);
  EXPECT_EQ(result.outcomes.size(), instance.tasks.size());
  EXPECT_GE(result.metrics.social_welfare, 0.0);
}

TEST_P(ConfigGrid, EconomicInvariantsHold) {
  const Instance instance = make();
  Pdftsp policy(pdftsp_config_for(instance), instance.cluster, instance.energy,
                instance.horizon);
  const SimResult result = run_simulation(instance, policy);
  for (const TaskOutcome& o : result.outcomes) {
    if (!o.admitted) {
      EXPECT_EQ(o.payment, 0.0);
      continue;
    }
    EXPECT_GE(o.payment, 0.0);
    EXPECT_GE(o.true_value - o.payment, -1e-9);      // IR
    EXPECT_GE(o.payment, o.vendor_cost + o.energy_cost - 1e-9);  // cost recovery
  }
}

TEST_P(ConfigGrid, ProviderNeverLosesMoney) {
  // With the cost pass-through in the payment, the provider's utility is a
  // sum of non-negative per-task margins.
  const Instance instance = make();
  Pdftsp policy(pdftsp_config_for(instance), instance.cluster, instance.energy,
                instance.horizon);
  const SimResult result = run_simulation(instance, policy);
  EXPECT_GE(result.metrics.provider_utility, -1e-9);
}

std::string grid_name(const ::testing::TestParamInfo<GridParam>& info) {
  const auto& [fleet, deadline, trace] = info.param;
  std::string name = to_string(fleet);
  name += '_';
  name += to_string(deadline);
  name += '_';
  name += trace.has_value() ? to_string(*trace) : std::string("Poisson");
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Cells, ConfigGrid,
    ::testing::Combine(
        ::testing::Values(FleetKind::kA100Only, FleetKind::kA40Only,
                          FleetKind::kHybrid),
        ::testing::Values(DeadlineKind::kTight, DeadlineKind::kMedium,
                          DeadlineKind::kSlack),
        ::testing::Values(std::optional<TraceKind>{},
                          std::optional<TraceKind>{TraceKind::kPhilly},
                          std::optional<TraceKind>{TraceKind::kHelios})),
    grid_name);

}  // namespace
}  // namespace lorasched
