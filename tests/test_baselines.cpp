// Tests for the comparison baselines: greedy EFT placement, NTM exclusivity,
// and the Titan per-slot batch MILP.
#include <gtest/gtest.h>

#include "lorasched/baselines/eft.h"
#include "lorasched/baselines/greedy_common.h"
#include "lorasched/baselines/ntm.h"
#include "lorasched/baselines/titan.h"
#include "lorasched/sim/engine.h"
#include "test_helpers.h"

namespace lorasched {
namespace {

using testing::flat_energy;
using testing::hetero_cluster;
using testing::make_task;
using testing::mini_cluster;

TEST(GreedyEarliestFinish, PicksEarliestSlotsOnFastestNode) {
  const Cluster cluster = hetero_cluster();  // node 0 fast (rate 1000)
  const EnergyModel energy = flat_energy();
  const CapacityLedger ledger(cluster, 20);
  const Task task = make_task(0, 3, 15, 2500.0, 2.0, 0.5);
  const Schedule schedule =
      greedy_earliest_finish(task, 3, cluster, energy, ledger, false);
  ASSERT_EQ(schedule.run.size(), 3u);  // ceil(2500/1000)
  EXPECT_EQ(schedule.run[0].slot, 3);
  EXPECT_EQ(schedule.run[1].slot, 4);
  EXPECT_EQ(schedule.run[2].slot, 5);
  for (const Assignment& a : schedule.run) EXPECT_EQ(a.node, 0);
}

TEST(GreedyEarliestFinish, SkipsSaturatedSlots) {
  const Cluster cluster = mini_cluster(1);
  const EnergyModel energy = flat_energy();
  CapacityLedger ledger(cluster, 20);
  ledger.reserve(0, 3, 1000.0, 1.0);  // slot 3 full
  const Task task = make_task(0, 3, 15, 900.0, 2.0, 0.5);
  const Schedule schedule =
      greedy_earliest_finish(task, 3, cluster, energy, ledger, false);
  ASSERT_EQ(schedule.run.size(), 2u);
  EXPECT_EQ(schedule.run[0].slot, 4);  // skipped the full slot
}

TEST(GreedyEarliestFinish, EmptyWhenDeadlineUnreachable) {
  const Cluster cluster = mini_cluster(1);
  const EnergyModel energy = flat_energy();
  const CapacityLedger ledger(cluster, 20);
  const Task task = make_task(0, 0, 2, 5000.0, 2.0, 0.5);  // needs 10 slots
  EXPECT_TRUE(
      greedy_earliest_finish(task, 0, cluster, energy, ledger, false).empty());
}

TEST(GreedyEarliestFinish, ExclusiveAvoidsOccupiedNodes) {
  const Cluster cluster = mini_cluster(2);
  const EnergyModel energy = flat_energy();
  CapacityLedger ledger(cluster, 20);
  ledger.reserve(0, 0, 100.0, 1.0);  // node 0 slot 0 has a tenant
  const Task task = make_task(0, 0, 10, 400.0, 2.0, 0.5);
  const Schedule schedule =
      greedy_earliest_finish(task, 0, cluster, energy, ledger, true);
  ASSERT_FALSE(schedule.empty());
  EXPECT_TRUE(schedule.exclusive);
  EXPECT_EQ(schedule.run[0].node, 1);  // the empty node
  EXPECT_EQ(schedule.run[0].slot, 0);
}

Instance baseline_instance(std::vector<Task> tasks, int nodes = 2,
                           Slot horizon = 24) {
  Marketplace::Config market_config;
  market_config.vendor_count = 3;
  return Instance(mini_cluster(nodes), flat_energy(),
                  Marketplace(market_config, 5), horizon, std::move(tasks));
}

TEST(Eft, AdmitsFeasibleTasksAndCompletesThem) {
  std::vector<Task> tasks{make_task(0, 1, 12, 900.0, 2.0, 0.5, 5.0),
                          make_task(1, 2, 14, 1400.0, 2.0, 0.5, 0.01)};
  const Instance instance = baseline_instance(tasks);
  EftPolicy policy;
  const SimResult result = run_simulation(instance, policy);
  // EFT admits regardless of economics — both tasks fit.
  EXPECT_EQ(result.metrics.admitted, 2);
  for (const TaskOutcome& o : result.outcomes) {
    EXPECT_TRUE(o.admitted);
  }
}

TEST(Eft, ChoosesFastestVendor) {
  std::vector<Task> tasks{make_task(0, 1, 20, 900.0, 2.0, 0.5, 50.0)};
  tasks[0].needs_prep = true;
  tasks[0].dataset_samples = 900.0;
  const Instance instance = baseline_instance(tasks);
  EftPolicy policy;
  const SimResult result = run_simulation(instance, policy);
  ASSERT_EQ(result.metrics.admitted, 1);
  const auto quotes = instance.market.quotes(instance.tasks[0]);
  Slot min_delay = quotes[0].delay;
  for (const auto& q : quotes) min_delay = std::min(min_delay, q.delay);
  EXPECT_EQ(quotes[static_cast<std::size_t>(result.outcomes[0].vendor)].delay,
            min_delay);
}

TEST(Ntm, OneTaskPerNodeSlot) {
  // Three identical tasks, two nodes: with exclusive occupancy at most two
  // can run in the same slot, so completions must stagger.
  std::vector<Task> tasks{make_task(0, 0, 20, 900.0, 2.0, 0.5, 5.0),
                          make_task(1, 0, 20, 900.0, 2.0, 0.5, 5.0),
                          make_task(2, 0, 20, 900.0, 2.0, 0.5, 5.0)};
  const Instance instance = baseline_instance(tasks);
  NtmPolicy policy(3);
  const SimResult result = run_simulation(instance, policy);
  EXPECT_EQ(result.metrics.admitted, 3);
  // 3 tasks x 2 slots each = 6 exclusive node-slots; min completion spread.
  Slot latest = 0;
  for (const TaskOutcome& o : result.outcomes) {
    latest = std::max(latest, o.completion);
  }
  EXPECT_GE(latest, 3);  // forced serialization beyond the 2-slot minimum
}

TEST(Ntm, UnderutilizesComparedToEft) {
  // Same workload: NTM's exclusivity admits no more than EFT's sharing.
  std::vector<Task> tasks;
  for (TaskId id = 0; id < 10; ++id) {
    tasks.push_back(make_task(id, 0, 6, 900.0, 2.0, 0.5, 5.0));
  }
  const Instance instance = baseline_instance(tasks);
  EftPolicy eft;
  NtmPolicy ntm(3);
  const SimResult eft_result = run_simulation(instance, eft);
  const SimResult ntm_result = run_simulation(instance, ntm);
  EXPECT_LE(ntm_result.metrics.admitted, eft_result.metrics.admitted);
  EXPECT_LT(ntm_result.metrics.admitted, 10);  // exclusivity must bind
}

TEST(Titan, AdmitsFeasibleTasksRegardlessOfBids) {
  // Titan is welfare-blind (paper §1): it packs feasible tasks whether or
  // not their bids cover the cost.
  std::vector<Task> tasks{make_task(0, 1, 12, 900.0, 2.0, 0.5, 5.0),
                          make_task(1, 1, 12, 900.0, 2.0, 0.5, 0.0001)};
  const Instance instance = baseline_instance(tasks);
  TitanPolicy policy;
  const SimResult result = run_simulation(instance, policy);
  EXPECT_EQ(result.metrics.admitted, 2);
}

TEST(Titan, BatchRespectsJointCapacity) {
  // Four tasks that each need half a node's memory for all slots of a
  // narrow window; only a joint-feasible subset may be admitted.
  std::vector<Task> tasks;
  for (TaskId id = 0; id < 6; ++id) {
    tasks.push_back(make_task(id, 0, 1, 800.0, 8.0, 0.4, 9.0));
  }
  const Instance instance = baseline_instance(tasks, 2, 8);
  TitanPolicy policy;
  const SimResult result = run_simulation(instance, policy);  // must not throw
  // 2 nodes x 16 GB / 8 GB = 4 concurrent; window is 2 slots and each task
  // needs both slots (800 work at 400/slot).
  EXPECT_LE(result.metrics.admitted, 4);
  EXPECT_GE(result.metrics.admitted, 1);
}

TEST(Titan, PacksAtLeastAsManyAsGreedyOnOneBatch) {
  // On a single batch Titan's MILP selects among candidate plans that
  // include EFT's greedy plan, so its admission count is at least EFT's.
  std::vector<Task> tasks;
  for (TaskId id = 0; id < 8; ++id) {
    tasks.push_back(make_task(id, 0, 16, 1200.0, 3.0, 0.25,
                              id % 2 == 0 ? 6.0 : 0.05));
  }
  const Instance instance = baseline_instance(tasks);
  TitanPolicy titan;
  EftPolicy eft;
  const SimResult titan_result = run_simulation(instance, titan);
  const SimResult eft_result = run_simulation(instance, eft);
  EXPECT_GE(titan_result.metrics.admitted, eft_result.metrics.admitted);
}

TEST(Titan, HandlesEmptySlots) {
  const Instance instance = baseline_instance({});
  TitanPolicy policy;
  const SimResult result = run_simulation(instance, policy);
  EXPECT_EQ(result.metrics.admitted, 0);
  EXPECT_EQ(result.metrics.rejected, 0);
}

TEST(PolicyNames, AreDistinct) {
  EftPolicy eft;
  NtmPolicy ntm;
  TitanPolicy titan;
  EXPECT_EQ(eft.name(), "EFT");
  EXPECT_EQ(ntm.name(), "NTM");
  EXPECT_EQ(titan.name(), "Titan");
}

}  // namespace
}  // namespace lorasched
