// Tests for the pricing-scheme ablations: posted fixed pricing and
// pay-as-bid, including the untruthfulness of first-price (the behaviour
// the paper's mechanism is designed to avoid).
#include "lorasched/baselines/pricing_schemes.h"

#include <gtest/gtest.h>

#include "lorasched/sim/engine.h"
#include "test_helpers.h"

namespace lorasched {
namespace {

using testing::make_task;
using testing::small_scenario;

TEST(FixedPrice, RejectsNegativeRate) {
  EXPECT_THROW(FixedPricePolicy(-0.1), std::invalid_argument);
}

TEST(FixedPrice, ReferenceRateScalesWithMarkup) {
  const Instance instance = make_instance(small_scenario(41));
  const Money at_cost =
      reference_price_per_ksample(instance.cluster, instance.energy, 1.0);
  const Money doubled =
      reference_price_per_ksample(instance.cluster, instance.energy, 2.0);
  EXPECT_GT(at_cost, 0.0);
  EXPECT_NEAR(doubled, 2.0 * at_cost, 1e-12);
}

TEST(FixedPrice, OnlyClearingBidsServed) {
  const Instance instance = make_instance(small_scenario(41));
  const Money rate =
      reference_price_per_ksample(instance.cluster, instance.energy, 1.5);
  FixedPricePolicy policy(rate);
  const SimResult result = run_simulation(instance, policy);
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const TaskOutcome& o = result.outcomes[i];
    if (!o.admitted) continue;
    const Task& task = instance.tasks[static_cast<std::size_t>(o.task)];
    // Winner cleared the posted price and pays exactly it.
    EXPECT_GE(task.bid + 1e-9, o.payment);
    EXPECT_NEAR(o.payment, rate * task.work / 1000.0 + o.vendor_cost, 1e-9);
  }
  EXPECT_GT(result.metrics.admitted, 0);
  EXPECT_GT(result.metrics.rejected, 0);  // the posted price excludes some
}

TEST(FixedPrice, HigherPostedPriceServesFewer) {
  const Instance instance = make_instance(small_scenario(43));
  FixedPricePolicy cheap(
      reference_price_per_ksample(instance.cluster, instance.energy, 0.5));
  FixedPricePolicy pricey(
      reference_price_per_ksample(instance.cluster, instance.energy, 3.0));
  const SimResult cheap_result = run_simulation(instance, cheap);
  const SimResult pricey_result = run_simulation(instance, pricey);
  EXPECT_GT(cheap_result.metrics.admitted, pricey_result.metrics.admitted);
}

TEST(FixedPrice, NoSinglePostedPriceFitsEveryLoad) {
  // The paper's argument against posted prices is *adaptability*: the
  // markup that maximizes welfare shifts with demand, so any fixed choice
  // is wrong somewhere. We verify both halves: (a) the best markup at
  // light load differs from the best at heavy load, and (b) the heavy-load
  // winner loses to the untuned pdFTSP auction at light load.
  auto welfare_at = [](double rate, double markup) {
    ScenarioConfig config = small_scenario(45);
    config.horizon = 48;
    config.arrival_rate = rate;
    const Instance instance = make_instance(config);
    FixedPricePolicy fixed(reference_price_per_ksample(instance.cluster,
                                                       instance.energy,
                                                       markup));
    return run_simulation(instance, fixed).metrics.social_welfare;
  };
  const double light_low = welfare_at(3.0, 1.0);
  const double light_high = welfare_at(3.0, 4.0);
  const double heavy_low = welfare_at(12.0, 1.0);
  const double heavy_high = welfare_at(12.0, 4.0);
  EXPECT_GT(light_low, light_high);  // light load favours a low price
  EXPECT_GT(heavy_high, heavy_low);  // heavy load favours a high price

  ScenarioConfig light = small_scenario(45);
  light.horizon = 48;
  light.arrival_rate = 3.0;
  const Instance instance = make_instance(light);
  Pdftsp auction(pdftsp_config_for(instance), instance.cluster,
                 instance.energy, instance.horizon);
  const Metrics auction_m = run_simulation(instance, auction).metrics;
  EXPECT_GT(auction_m.social_welfare, light_high);
}

TEST(FirstPrice, WinnersPayTheirBid) {
  const Instance instance = make_instance(small_scenario(47));
  FirstPricePolicy policy(pdftsp_config_for(instance), instance.cluster,
                          instance.energy, instance.horizon);
  const SimResult result = run_simulation(instance, policy);
  int winners = 0;
  for (const TaskOutcome& o : result.outcomes) {
    if (!o.admitted) continue;
    ++winners;
    EXPECT_DOUBLE_EQ(o.payment, o.bid);
  }
  EXPECT_GT(winners, 0);
}

TEST(FirstPrice, SameWinnersAsPdftsp) {
  // Only the payment rule differs; admissions and schedules are identical.
  const Instance instance = make_instance(small_scenario(47));
  FirstPricePolicy first(pdftsp_config_for(instance), instance.cluster,
                         instance.energy, instance.horizon);
  Pdftsp second(pdftsp_config_for(instance), instance.cluster, instance.energy,
                instance.horizon);
  const SimResult a = run_simulation(instance, first);
  const SimResult b = run_simulation(instance, second);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].admitted, b.outcomes[i].admitted);
  }
  EXPECT_NEAR(a.metrics.social_welfare, b.metrics.social_welfare, 1e-9);
}

TEST(FirstPrice, BidShadingPaysOff) {
  // Untruthfulness: under pay-as-bid, some truthful winner gains by
  // shading its bid — exactly what eq. (14)'s resource pricing prevents.
  ScenarioConfig config = small_scenario(49);
  config.arrival_rate = 3.0;
  const Instance instance = make_instance(config);
  const PdftspConfig pd_config = pdftsp_config_for(instance);

  auto utility_of = [&](TaskId victim, double factor) {
    Instance modified = instance;
    auto& task = modified.tasks[static_cast<std::size_t>(victim)];
    task.bid *= factor;
    FirstPricePolicy policy(pd_config, modified.cluster, modified.energy,
                            modified.horizon);
    const SimResult result = run_simulation(modified, policy);
    const TaskOutcome& o = result.outcomes[static_cast<std::size_t>(victim)];
    return o.admitted
               ? instance.tasks[static_cast<std::size_t>(victim)].true_value -
                     o.payment
               : 0.0;
  };

  bool shading_gained = false;
  for (TaskId victim = 0;
       victim < static_cast<TaskId>(instance.tasks.size()) && !shading_gained;
       victim += 7) {
    const double honest = utility_of(victim, 1.0);
    for (double factor : {0.5, 0.7, 0.9}) {
      if (utility_of(victim, factor) > honest + 1e-9) {
        shading_gained = true;
        break;
      }
    }
  }
  EXPECT_TRUE(shading_gained)
      << "pay-as-bid unexpectedly looked truthful on this workload";
}

}  // namespace
}  // namespace lorasched
