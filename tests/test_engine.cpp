// Tests for the simulation engine, validator, and metrics accounting.
#include "lorasched/sim/engine.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "lorasched/sim/validator.h"
#include "test_helpers.h"

namespace lorasched {
namespace {

using testing::flat_energy;
using testing::make_task;
using testing::mini_cluster;

Instance tiny_instance(std::vector<Task> tasks, Slot horizon = 20) {
  return Instance(mini_cluster(), flat_energy(),
                  Marketplace(Marketplace::Config{}, 1), horizon,
                  std::move(tasks));
}

/// A policy that admits every task with a fixed single-slot plan.
class AdmitAllPolicy final : public Policy {
 public:
  std::string_view name() const override { return "admit-all"; }
  std::vector<Decision> on_slot(const SlotContext& ctx) override {
    std::vector<Decision> decisions;
    for (const Task& task : ctx.arrivals) {
      Decision d;
      d.task = task.id;
      Schedule schedule;
      schedule.task = task.id;
      // Enough consecutive slots from arrival to cover the work.
      double done = 0.0;
      Slot t = task.arrival;
      while (done < task.work && t <= task.deadline) {
        schedule.run.push_back({0, t});
        done += ctx.cluster.task_rate(task, 0);
        ++t;
      }
      finalize_schedule(schedule, task, ctx.cluster, ctx.energy);
      d.admit = true;
      d.schedule = std::move(schedule);
      commit_decision(ctx.ledger, ctx.cluster, task, d);
      decisions.push_back(std::move(d));
    }
    return decisions;
  }
};

/// A policy that rejects everything.
class RejectAllPolicy final : public Policy {
 public:
  std::string_view name() const override { return "reject-all"; }
  std::vector<Decision> on_slot(const SlotContext& ctx) override {
    std::vector<Decision> decisions(ctx.arrivals.size());
    for (std::size_t i = 0; i < ctx.arrivals.size(); ++i) {
      decisions[i].task = ctx.arrivals[i].id;
    }
    return decisions;
  }
};

TEST(Validator, AcceptsValidSchedule) {
  const Cluster cluster = mini_cluster();
  const Task task = make_task(0, 2, 6, 900.0, 2.0, 0.5);
  Schedule schedule;
  schedule.task = 0;
  schedule.run = {{0, 2}, {1, 4}};  // 500 + 500 >= 900
  EXPECT_EQ(validate_schedule(task, schedule, cluster, 10), "");
}

TEST(Validator, RejectsForeignSchedule) {
  const Cluster cluster = mini_cluster();
  const Task task = make_task(0, 0, 6, 100.0);
  Schedule schedule;
  schedule.task = 3;
  EXPECT_NE(validate_schedule(task, schedule, cluster, 10), "");
}

TEST(Validator, EnforcesVendorConsistency) {
  const Cluster cluster = mini_cluster();
  Task prep = make_task(0, 0, 6, 400.0, 2.0, 0.5);
  prep.needs_prep = true;
  Schedule schedule;
  schedule.task = 0;
  schedule.run = {{0, 1}};
  EXPECT_NE(validate_schedule(prep, schedule, cluster, 10), "");  // (4a)
  schedule.vendor = 0;
  EXPECT_EQ(validate_schedule(prep, schedule, cluster, 10), "");
  Task no_prep = make_task(0, 0, 6, 400.0, 2.0, 0.5);
  EXPECT_NE(validate_schedule(no_prep, schedule, cluster, 10), "");
}

TEST(Validator, EnforcesWindow) {
  const Cluster cluster = mini_cluster();
  Task task = make_task(0, 3, 6, 400.0, 2.0, 0.5);
  Schedule early;
  early.task = 0;
  early.run = {{0, 2}};  // before arrival (4c)
  EXPECT_NE(validate_schedule(task, early, cluster, 10), "");
  Schedule late;
  late.task = 0;
  late.run = {{0, 7}};  // after deadline (4d)
  EXPECT_NE(validate_schedule(task, late, cluster, 10), "");
}

TEST(Validator, EnforcesPrepDelayShiftsStart) {
  const Cluster cluster = mini_cluster();
  Task task = make_task(0, 3, 10, 400.0, 2.0, 0.5);
  task.needs_prep = true;
  Schedule schedule;
  schedule.task = 0;
  schedule.vendor = 0;
  schedule.prep_delay = 2;
  schedule.run = {{0, 4}};  // 4 < 3 + 2 (4c with prep)
  EXPECT_NE(validate_schedule(task, schedule, cluster, 10), "");
  schedule.run = {{0, 5}};
  EXPECT_EQ(validate_schedule(task, schedule, cluster, 10), "");
}

TEST(Validator, EnforcesOneNodePerSlot) {
  const Cluster cluster = mini_cluster();
  const Task task = make_task(0, 0, 6, 400.0, 2.0, 0.5);
  Schedule schedule;
  schedule.task = 0;
  schedule.run = {{0, 2}, {1, 2}};  // (4b)
  EXPECT_NE(validate_schedule(task, schedule, cluster, 10), "");
}

TEST(Validator, EnforcesWorkCompletion) {
  const Cluster cluster = mini_cluster();
  const Task task = make_task(0, 0, 6, 2000.0, 2.0, 0.5);
  Schedule schedule;
  schedule.task = 0;
  schedule.run = {{0, 1}};  // 500 < 2000 (4e)
  EXPECT_NE(validate_schedule(task, schedule, cluster, 10), "");
}

TEST(Validator, EnforcesHorizonAndKnownNode) {
  const Cluster cluster = mini_cluster();
  const Task task = make_task(0, 0, 15, 400.0, 2.0, 0.5);
  Schedule beyond;
  beyond.task = 0;
  beyond.run = {{0, 12}};
  EXPECT_NE(validate_schedule(task, beyond, cluster, 10), "");
  Schedule unknown;
  unknown.task = 0;
  unknown.run = {{9, 2}};
  EXPECT_NE(validate_schedule(task, unknown, cluster, 10), "");
}

TEST(Validator, RequireValidThrows) {
  const Cluster cluster = mini_cluster();
  const Task task = make_task(0, 0, 6, 2000.0, 2.0, 0.5);
  Schedule bad;
  bad.task = 0;
  EXPECT_THROW(require_valid_schedule(task, bad, cluster, 10),
               std::logic_error);
}

TEST(Engine, WelfareAccountingMatchesDefinition) {
  // One admitted task: welfare = bid - energy (no vendor).
  std::vector<Task> tasks{make_task(0, 1, 8, 900.0, 2.0, 0.5, 7.0)};
  const Instance instance = tiny_instance(tasks);
  AdmitAllPolicy policy;
  const SimResult result = run_simulation(instance, policy);
  ASSERT_EQ(result.metrics.admitted, 1);
  // 2 slots at rate 500, energy = 2 * 0.2 * 0.5 = 0.2.
  EXPECT_NEAR(result.metrics.total_energy_cost, 0.2, 1e-9);
  EXPECT_NEAR(result.metrics.social_welfare, 7.0 - 0.2, 1e-9);
}

TEST(Engine, RejectAllYieldsZeroWelfare) {
  std::vector<Task> tasks{make_task(0, 1, 8, 900.0),
                          make_task(1, 2, 9, 900.0)};
  const Instance instance = tiny_instance(tasks);
  RejectAllPolicy policy;
  const SimResult result = run_simulation(instance, policy);
  EXPECT_EQ(result.metrics.admitted, 0);
  EXPECT_EQ(result.metrics.rejected, 2);
  EXPECT_EQ(result.metrics.social_welfare, 0.0);
  EXPECT_EQ(result.metrics.utilization, 0.0);
}

TEST(Engine, OutcomesCoverEveryTask) {
  std::vector<Task> tasks{make_task(0, 1, 8, 900.0, 2.0, 0.5, 7.0),
                          make_task(1, 3, 9, 400.0, 2.0, 0.5, 0.1)};
  const Instance instance = tiny_instance(tasks);
  AdmitAllPolicy policy;
  const SimResult result = run_simulation(instance, policy);
  ASSERT_EQ(result.outcomes.size(), 2u);
  EXPECT_EQ(result.outcomes[0].task, 0);
  EXPECT_EQ(result.outcomes[1].task, 1);
  EXPECT_TRUE(result.outcomes[0].admitted);
  EXPECT_GT(result.outcomes[0].slots_used, 0);
  EXPECT_GE(result.outcomes[0].completion, result.outcomes[0].arrival);
}

TEST(Engine, TasksProcessedInArrivalOrderEvenIfShuffled) {
  std::vector<Task> tasks{make_task(1, 5, 12, 400.0, 2.0, 0.5, 3.0),
                          make_task(0, 2, 9, 400.0, 2.0, 0.5, 3.0)};
  const Instance instance = tiny_instance(tasks);
  AdmitAllPolicy policy;
  const SimResult result = run_simulation(instance, policy);
  ASSERT_EQ(result.outcomes.size(), 2u);
  EXPECT_EQ(result.outcomes[0].task, 0);  // earlier arrival first
  EXPECT_EQ(result.outcomes[1].task, 1);
}

TEST(Engine, InvalidScheduleFromPolicyThrows) {
  class BadPolicy final : public Policy {
   public:
    std::string_view name() const override { return "bad"; }
    std::vector<Decision> on_slot(const SlotContext& ctx) override {
      std::vector<Decision> decisions;
      for (const Task& task : ctx.arrivals) {
        Decision d;
        d.task = task.id;
        d.admit = true;  // admits with an empty (work-shortfall) schedule
        d.schedule.task = task.id;
        decisions.push_back(d);
      }
      return decisions;
    }
  };
  std::vector<Task> tasks{make_task(0, 1, 8, 900.0)};
  const Instance instance = tiny_instance(tasks);
  BadPolicy policy;
  EXPECT_THROW(run_simulation(instance, policy), std::logic_error);
}

TEST(Engine, MissingDecisionsThrow) {
  class SilentPolicy final : public Policy {
   public:
    std::string_view name() const override { return "silent"; }
    std::vector<Decision> on_slot(const SlotContext&) override { return {}; }
  };
  std::vector<Task> tasks{make_task(0, 1, 8, 900.0)};
  const Instance instance = tiny_instance(tasks);
  SilentPolicy policy;
  EXPECT_THROW(run_simulation(instance, policy), std::logic_error);
}

TEST(Engine, UnbookedAdmissionDetected) {
  class NoBookPolicy final : public Policy {
   public:
    std::string_view name() const override { return "no-book"; }
    std::vector<Decision> on_slot(const SlotContext& ctx) override {
      std::vector<Decision> decisions;
      for (const Task& task : ctx.arrivals) {
        Decision d;
        d.task = task.id;
        d.admit = true;
        Schedule schedule;
        schedule.task = task.id;
        schedule.run = {{0, task.arrival}, {0, task.arrival + 1}};
        finalize_schedule(schedule, task, ctx.cluster, ctx.energy);
        d.schedule = std::move(schedule);
        // BUG under test: no commit_decision call.
        decisions.push_back(std::move(d));
      }
      return decisions;
    }
  };
  std::vector<Task> tasks{make_task(0, 1, 8, 900.0, 2.0, 0.5, 7.0)};
  const Instance instance = tiny_instance(tasks);
  NoBookPolicy policy;
  EXPECT_THROW(run_simulation(instance, policy), std::logic_error);
}

TEST(Engine, UtilizationReflectsBookings) {
  std::vector<Task> tasks{make_task(0, 0, 19, 10000.0, 2.0, 0.5, 50.0)};
  const Instance instance = tiny_instance(tasks);
  AdmitAllPolicy policy;
  const SimResult result = run_simulation(instance, policy);
  ASSERT_EQ(result.metrics.admitted, 1);
  // 20 slots * 500/slot = 10000 booked of 2 nodes * 20 * 1000 capacity.
  EXPECT_NEAR(result.metrics.utilization, 0.25, 1e-9);
}

TEST(Engine, RejectsNonPositiveHorizon) {
  Instance instance = tiny_instance({}, 5);
  instance.horizon = 0;
  RejectAllPolicy policy;
  EXPECT_THROW(run_simulation(instance, policy), std::invalid_argument);
}

TEST(Engine, CountsPreemptions) {
  // A policy that schedules with a gap: run slots {1, 2, 5, 6, 9} has two
  // suspend/resume points (paper §1's alternating execution).
  class GappyPolicy final : public Policy {
   public:
    std::string_view name() const override { return "gappy"; }
    std::vector<Decision> on_slot(const SlotContext& ctx) override {
      std::vector<Decision> decisions;
      for (const Task& task : ctx.arrivals) {
        Decision d;
        d.task = task.id;
        Schedule schedule;
        schedule.task = task.id;
        schedule.run = {{0, 1}, {0, 2}, {0, 5}, {0, 6}, {0, 9}};
        finalize_schedule(schedule, task, ctx.cluster, ctx.energy);
        d.admit = true;
        d.schedule = std::move(schedule);
        commit_decision(ctx.ledger, ctx.cluster, task, d);
        decisions.push_back(std::move(d));
      }
      return decisions;
    }
  };
  std::vector<Task> tasks{make_task(0, 1, 12, 2400.0, 2.0, 0.5, 9.0)};
  const Instance instance = tiny_instance(tasks);
  GappyPolicy policy;
  const SimResult result = run_simulation(instance, policy);
  ASSERT_TRUE(result.outcomes[0].admitted);
  EXPECT_EQ(result.outcomes[0].preemptions, 2);
  EXPECT_EQ(result.outcomes[0].slots_used, 5);
}

TEST(Metrics, AddAdmittedAccumulates) {
  Metrics metrics;
  TaskOutcome outcome;
  outcome.bid = 10.0;
  outcome.true_value = 10.0;
  outcome.payment = 6.0;
  outcome.vendor_cost = 1.0;
  outcome.energy_cost = 2.0;
  metrics.add_admitted(outcome);
  EXPECT_EQ(metrics.admitted, 1);
  EXPECT_NEAR(metrics.social_welfare, 7.0, 1e-12);    // 10 - 1 - 2
  EXPECT_NEAR(metrics.provider_utility, 3.0, 1e-12);  // 6 - 1 - 2
  EXPECT_NEAR(metrics.user_utility, 4.0, 1e-12);      // 10 - 6
  // Welfare decomposition: U = Ur + Uc.
  EXPECT_NEAR(metrics.social_welfare,
              metrics.provider_utility + metrics.user_utility, 1e-12);
}

}  // namespace
}  // namespace lorasched
