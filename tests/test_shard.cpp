// Sharded scheduling correctness (DESIGN.md §10): the planner must produce
// balanced exact covers, a 1-shard ShardedService must reproduce the
// monolithic AdmissionService bit for bit, K-shard runs must be
// deterministic under any thread schedule, second-chance re-routing must
// recover capacity rejects, and checkpoint/restore must resume to a
// byte-identical final state.
#include "lorasched/shard/sharded_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "lorasched/cluster/capacity_ledger.h"
#include "lorasched/core/online_params.h"
#include "lorasched/core/pdftsp.h"
#include "lorasched/io/serialize.h"
#include "lorasched/service/admission_service.h"
#include "lorasched/shard/price_board.h"
#include "lorasched/shard/router.h"
#include "lorasched/shard/shard_planner.h"
#include "lorasched/sim/engine.h"
#include "test_helpers.h"

namespace lorasched::shard {
namespace {

/// Exact equality of everything a decision commits to (decide_seconds is
/// wall-clock noise and deliberately excluded).
void expect_same_outcomes(const std::vector<TaskOutcome>& a,
                          const std::vector<TaskOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].task, b[i].task);
    EXPECT_EQ(a[i].admitted, b[i].admitted);
    EXPECT_EQ(a[i].bid, b[i].bid);
    EXPECT_EQ(a[i].payment, b[i].payment);
    EXPECT_EQ(a[i].vendor, b[i].vendor);
    EXPECT_EQ(a[i].vendor_cost, b[i].vendor_cost);
    EXPECT_EQ(a[i].energy_cost, b[i].energy_cost);
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].completion, b[i].completion);
    EXPECT_EQ(a[i].slots_used, b[i].slots_used);
    EXPECT_EQ(a[i].preemptions, b[i].preemptions);
  }
}

void expect_same_metrics(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.social_welfare, b.social_welfare);
  EXPECT_EQ(a.provider_utility, b.provider_utility);
  EXPECT_EQ(a.user_utility, b.user_utility);
  EXPECT_EQ(a.total_payments, b.total_payments);
  EXPECT_EQ(a.total_vendor_cost, b.total_vendor_cost);
  EXPECT_EQ(a.total_energy_cost, b.total_energy_cost);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.utilization, b.utilization);
}

/// Submits every instance task from `threads` producers, then steps the
/// service through its whole horizon.
template <typename Service>
void serve_instance(Service& service, const Instance& instance,
                    int threads = 4) {
  std::vector<std::thread> producers;
  for (int p = 0; p < threads; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = static_cast<std::size_t>(p);
           i < instance.tasks.size(); i += static_cast<std::size_t>(threads)) {
        ASSERT_EQ(service.submit(instance.tasks[i]),
                  service::SubmitResult::kAccepted);
      }
    });
  }
  for (auto& t : producers) t.join();
  while (!service.done()) service.step();
}

// --- ShardPlanner ----------------------------------------------------------

TEST(ShardPlanner, CoversEveryNodeExactlyOnce) {
  const Instance instance = make_instance(testing::small_scenario());
  const Cluster& cluster = instance.cluster;
  for (const int shards : {1, 2, 3, 4, cluster.node_count()}) {
    SCOPED_TRACE(shards);
    const ShardPlan plan = ShardPlanner::plan(cluster, shards);
    ASSERT_EQ(plan.shard_count(), shards);
    std::set<NodeId> seen;
    for (const auto& members : plan.nodes) {
      EXPECT_FALSE(members.empty());  // every shard can decide something
      for (std::size_t i = 0; i < members.size(); ++i) {
        EXPECT_TRUE(seen.insert(members[i]).second);  // disjoint
        if (i > 0) {
          EXPECT_LT(members[i - 1], members[i]);  // ascending
        }
      }
    }
    EXPECT_EQ(static_cast<int>(seen.size()), cluster.node_count());
  }
}

TEST(ShardPlanner, BalancesComputeWithinOneNode) {
  const Instance instance = make_instance(testing::small_scenario());
  const Cluster& cluster = instance.cluster;
  double biggest_node = 0.0;
  for (NodeId k = 0; k < cluster.node_count(); ++k) {
    biggest_node = std::max(biggest_node, cluster.compute_capacity(k));
  }
  for (const int shards : {2, 3}) {
    SCOPED_TRACE(shards);
    const ShardPlan plan = ShardPlanner::plan(cluster, shards);
    double lo = std::numeric_limits<double>::infinity();
    double hi = 0.0;
    for (const auto& members : plan.nodes) {
      double compute = 0.0;
      for (const NodeId k : members) compute += cluster.compute_capacity(k);
      lo = std::min(lo, compute);
      hi = std::max(hi, compute);
    }
    // Greedy least-loaded cannot spread worse than one node's capacity.
    EXPECT_LE(hi - lo, biggest_node + 1e-9);
  }
}

TEST(ShardPlanner, SingleShardIsIdentityPartition) {
  const Cluster cluster = testing::hetero_cluster();
  const ShardPlan plan = ShardPlanner::plan(cluster, 1);
  ASSERT_EQ(plan.shard_count(), 1);
  ASSERT_EQ(static_cast<int>(plan.nodes[0].size()), cluster.node_count());
  for (NodeId k = 0; k < cluster.node_count(); ++k) {
    EXPECT_EQ(plan.nodes[0][static_cast<std::size_t>(k)], k);
  }
  const Cluster sub = ShardPlanner::sub_cluster(cluster, plan.nodes[0]);
  ASSERT_EQ(sub.node_count(), cluster.node_count());
  EXPECT_EQ(sub.base_model_gb(), cluster.base_model_gb());
  for (NodeId k = 0; k < cluster.node_count(); ++k) {
    EXPECT_EQ(sub.compute_capacity(k), cluster.compute_capacity(k));
    EXPECT_EQ(sub.adapter_mem_capacity(k), cluster.adapter_mem_capacity(k));
  }
}

TEST(ShardPlanner, RejectsBadShardCounts) {
  const Cluster cluster = testing::mini_cluster(3);
  EXPECT_THROW((void)ShardPlanner::plan(cluster, 0), std::invalid_argument);
  EXPECT_THROW((void)ShardPlanner::plan(cluster, 4), std::invalid_argument);
}

// --- Router ----------------------------------------------------------------

TEST(Router, InfeasibleShardsRankLastNotDropped) {
  // fast node: 24 GB (20 GB adapter room); slow node: 16 GB (12 GB room).
  const Cluster cluster = testing::hetero_cluster();
  const ShardPlan plan = ShardPlanner::plan(cluster, 2);
  const Router router({/*reroute_attempts=*/1, /*seed=*/0},
                      ShardPlanner::topology(cluster, plan));

  std::vector<PriceSnapshot> prices(2);
  for (auto& snapshot : prices) {
    snapshot.classes.resize(static_cast<std::size_t>(cluster.class_count()));
  }

  // 15 GB of adapters fits only the fast class.
  const Task bid = testing::make_task(1, 0, 10, 500.0, /*mem_gb=*/15.0);
  int fast_shard = -1;
  for (int s = 0; s < plan.shard_count(); ++s) {
    if (cluster.node_class(plan.nodes[static_cast<std::size_t>(s)][0]) == 0) {
      fast_shard = s;
    }
  }
  ASSERT_NE(fast_shard, -1);
  const int slow_shard = 1 - fast_shard;

  EXPECT_TRUE(std::isfinite(
      router.estimate(bid, fast_shard,
                      prices[static_cast<std::size_t>(fast_shard)])));
  EXPECT_TRUE(std::isinf(
      router.estimate(bid, slow_shard,
                      prices[static_cast<std::size_t>(slow_shard)])));

  const std::vector<int> ranking = router.rank(bid, prices);
  ASSERT_EQ(ranking.size(), 2u);  // never dropped, only demoted
  EXPECT_EQ(ranking.front(), fast_shard);
  EXPECT_EQ(ranking.back(), slow_shard);

  // Deterministic in (bid, prices, seed).
  EXPECT_EQ(router.rank(bid, prices), ranking);
}

TEST(Router, PrefersCheaperPricesOverFreeCapacity) {
  const Cluster cluster = testing::mini_cluster(4);  // one class
  const ShardPlan plan = ShardPlanner::plan(cluster, 2);
  const Router router({1, 0}, ShardPlanner::topology(cluster, plan));

  std::vector<PriceSnapshot> prices(2);
  for (auto& snapshot : prices) snapshot.classes.resize(1);
  prices[0].classes[0].mean_lambda = 2.0;  // expensive shard 0
  prices[1].classes[0].mean_lambda = 0.5;  // cheap shard 1
  prices[0].classes[0].free_compute = 1e9;  // capacity must not override cost
  prices[0].free_compute = 1e9;

  const Task bid = testing::make_task(1, 0, 10, 500.0);
  const std::vector<int> ranking = router.rank(bid, prices);
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking.front(), 1);
}

// --- PriceBoard ------------------------------------------------------------

// Seqlock consistency under a racing writer: every read must observe one
// published snapshot in full, never a torn mix of two. Run under TSan (the
// CI thread-sanitizer job includes -R Shard).
TEST(PriceBoard, SeqlockReadsAreNeverTorn) {
  constexpr int kClasses = 3;
  constexpr Slot kRounds = 20000;
  PriceBoard board(1, kClasses);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const PriceSnapshot snapshot = board.read(0);
        // The writer publishes every field equal to the round number, so
        // any disagreement within one snapshot is a torn read. Before the
        // first publish a reader may still see the board's initial state
        // (slot -1, all zeros), which is consistent too.
        const double v = snapshot.free_compute;
        bool ok = snapshot.published_slot == static_cast<Slot>(v) ||
                  (snapshot.published_slot == -1 && v == 0.0);
        for (const ClassPrice& cls : snapshot.classes) {
          ok = ok && cls.free_compute == v && cls.free_mem == v &&
               cls.mean_lambda == v && cls.mean_phi == v;
        }
        if (!ok) torn.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  PriceSnapshot snapshot;
  snapshot.classes.resize(kClasses);
  for (Slot round = 0; round <= kRounds; ++round) {
    const double v = static_cast<double>(round);
    snapshot.published_slot = round;
    snapshot.free_compute = v;
    for (ClassPrice& cls : snapshot.classes) {
      cls = ClassPrice{v, v, v, v};
    }
    board.publish(0, snapshot);
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  const PriceSnapshot last = board.read(0);
  EXPECT_EQ(last.published_slot, kRounds);
  EXPECT_EQ(last.free_compute, static_cast<double>(kRounds));
}

TEST(PriceBoard, SeqlockVersionIsEvenOnEveryConsistentRead) {
  // The DESIGN.md §13 seqlock exemption rests on the version protocol:
  // odd while a publish is in flight, bumped twice per publish, and read()
  // only returns data bracketed by two identical even observations. Stress
  // it with readers sampling the version around every read; under TSan
  // this is also the data-race proof for the documented exemption.
  constexpr int kClasses = 2;
  constexpr Slot kRounds = 10000;
  PriceBoard board(2, kClasses);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      const int shard = r % board.shard_count();
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t before = board.version(shard);
        const PriceSnapshot snapshot = board.read(shard);
        const std::uint64_t after = board.version(shard);
        // The version never moves backwards, and a read that saw no
        // concurrent publish (version unchanged and even across it) must
        // be internally consistent with that stable version's contents.
        if (after < before) violations.fetch_add(1);
        if (before == after && before % 2 == 0) {
          const auto v = static_cast<double>(snapshot.published_slot);
          for (const ClassPrice& cls : snapshot.classes) {
            if (snapshot.published_slot >= 0 && cls.free_compute != v) {
              violations.fetch_add(1);
            }
          }
        }
      }
    });
  }

  PriceSnapshot snapshot;
  snapshot.classes.resize(kClasses);
  for (Slot round = 0; round <= kRounds; ++round) {
    const double v = static_cast<double>(round);
    snapshot.published_slot = round;
    snapshot.free_compute = v;
    for (ClassPrice& cls : snapshot.classes) cls = ClassPrice{v, v, v, v};
    board.publish(0, snapshot);
    board.publish(1, snapshot);
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0u);
  // Quiescent: even, and exactly two bumps per publish.
  for (int s = 0; s < board.shard_count(); ++s) {
    EXPECT_EQ(board.version(s) % 2, 0u);
    EXPECT_EQ(board.version(s), 2u * static_cast<std::uint64_t>(kRounds + 1));
  }
}

// --- ShardedService --------------------------------------------------------

TEST(ShardedService, SingleShardMatchesMonolithicExactly) {
  const Instance instance = make_instance(testing::small_scenario());
  const PdftspConfig config = pdftsp_config_for(instance);

  Pdftsp sim_policy(config, instance.cluster, instance.energy,
                    instance.horizon);
  const SimResult expected = run_simulation(instance, sim_policy);

  ShardedConfig sharded;
  sharded.shards = 1;
  ShardedService service(instance, make_pdftsp_factory(config), sharded);
  serve_instance(service, instance);
  EXPECT_EQ(service.rerouted_bids(), 0u);  // one shard: nowhere else to go
  const SimResult actual = service.finish();

  expect_same_outcomes(expected.outcomes, actual.outcomes);
  expect_same_metrics(expected.metrics, actual.metrics);
  ASSERT_EQ(expected.schedules.size(), actual.schedules.size());
  for (std::size_t i = 0; i < expected.schedules.size(); ++i) {
    EXPECT_EQ(expected.schedules[i].run, actual.schedules[i].run);
  }
}

TEST(ShardedService, DeterministicAcrossRunsAndProducerSchedules) {
  const Instance instance = make_instance(testing::small_scenario(11));
  const PdftspConfig config = pdftsp_config_for(instance);

  ShardedConfig sharded;
  sharded.shards = 4;
  sharded.reroute_attempts = 2;
  sharded.router_seed = 99;

  ShardedService first(instance, make_pdftsp_factory(config), sharded);
  serve_instance(first, instance, /*threads=*/1);
  const SimResult a = first.finish();

  ShardedService second(instance, make_pdftsp_factory(config), sharded);
  serve_instance(second, instance, /*threads=*/4);
  const SimResult b = second.finish();

  expect_same_outcomes(a.outcomes, b.outcomes);
  expect_same_metrics(a.metrics, b.metrics);
  ASSERT_EQ(a.schedules.size(), b.schedules.size());
  for (std::size_t i = 0; i < a.schedules.size(); ++i) {
    EXPECT_EQ(a.schedules[i].run, b.schedules[i].run);
  }
}

/// Two one-node shards — a 2000-samples/slot "big" node and a 1000 "small"
/// one — and two identical same-slot bids that both prefer the big shard
/// and each need a full node-slot there. The second bid loses the race for
/// the big node's only feasible slot.
Instance two_shard_contention() {
  std::vector<GpuProfile> profiles{
      GpuProfile{"big", 2000.0, 20.0, 0.3, 1.2},
      GpuProfile{"small", 1000.0, 20.0, 0.3, 1.2},
  };
  Cluster cluster(std::move(profiles), 4.0);
  // work 1000 at share 1.0 with deadline 0: exactly one full node-slot on
  // either class (big books 2000 compute, small books 1000).
  std::vector<Task> tasks{
      testing::make_task(1, 0, 0, 1000.0, 2.0, 1.0, 50.0),
      testing::make_task(2, 0, 0, 1000.0, 2.0, 1.0, 50.0),
  };
  return Instance(std::move(cluster), testing::flat_energy(),
                  Marketplace(Marketplace::Config{}, 1), /*horizon=*/2,
                  std::move(tasks));
}

// Epoch-batched admission inside every shard policy must leave a K=4 run
// bit-identical to the one-at-a-time run: batching only changes when a
// shard's Alg. 2 searches execute, never what they decide.
TEST(ShardedService, EpochBatchedAdmissionBitIdenticalAtK4) {
  ScenarioConfig scenario = testing::small_scenario(47);
  scenario.nodes = 8;  // four 2-node shards
  const Instance instance = make_instance(scenario);
  const PdftspConfig base = pdftsp_config_for(instance);
  auto replay = [&](int batch, int workers) {
    PdftspConfig config = base;
    config.admission_batch = batch;
    config.batch_workers = workers;
    ShardedConfig sharded;
    sharded.shards = 4;
    ShardedService service(instance, make_pdftsp_factory(config), sharded);
    serve_instance(service, instance, /*threads=*/1);
    return service.finish();
  };

  const SimResult seq = replay(0, 0);
  struct BatchArm {
    int batch;
    int workers;
  };
  for (const BatchArm arm : {BatchArm{8, 0}, BatchArm{8, 2}}) {
    SCOPED_TRACE(arm.batch);
    SCOPED_TRACE(arm.workers);
    const SimResult batched = replay(arm.batch, arm.workers);
    expect_same_outcomes(seq.outcomes, batched.outcomes);
    expect_same_metrics(seq.metrics, batched.metrics);
    ASSERT_EQ(seq.schedules.size(), batched.schedules.size());
    for (std::size_t i = 0; i < seq.schedules.size(); ++i) {
      EXPECT_EQ(seq.schedules[i].run, batched.schedules[i].run);
    }
  }
}

TEST(ShardedService, SecondChanceRecoversCapacityReject) {
  const Instance instance = two_shard_contention();
  const PdftspConfig config = pdftsp_config_for(instance);

  ShardedConfig sharded;
  sharded.shards = 2;
  sharded.reroute_attempts = 1;
  ShardedService service(instance, make_pdftsp_factory(config), sharded);
  serve_instance(service, instance, 1);
  EXPECT_EQ(service.rerouted_bids(), 1u);
  EXPECT_EQ(service.reroute_admits(), 1u);
  const SimResult result = service.finish();
  EXPECT_EQ(result.metrics.admitted, 2);
  EXPECT_EQ(result.metrics.rejected, 0);

  // Task 1 won the big node (global 0); task 2's second chance landed on
  // the small shard's node (global 1) — schedules come back in fleet ids.
  ASSERT_EQ(result.schedules.size(), 2u);
  for (const Schedule& schedule : result.schedules) {
    ASSERT_EQ(schedule.run.size(), 1u);
    EXPECT_EQ(schedule.run[0].node, schedule.task == 1 ? 0 : 1);
    EXPECT_EQ(schedule.run[0].slot, 0);
  }
}

TEST(ShardedService, WithoutSecondChanceTheRejectIsFinal) {
  const Instance instance = two_shard_contention();
  const PdftspConfig config = pdftsp_config_for(instance);

  ShardedConfig sharded;
  sharded.shards = 2;
  sharded.reroute_attempts = 0;  // the paper's single irrevocable offer
  ShardedService service(instance, make_pdftsp_factory(config), sharded);
  serve_instance(service, instance, 1);
  EXPECT_EQ(service.rerouted_bids(), 0u);
  EXPECT_EQ(service.reroute_admits(), 0u);
  const SimResult result = service.finish();
  EXPECT_EQ(result.metrics.admitted, 1);
  EXPECT_EQ(result.metrics.rejected, 1);
  ASSERT_FALSE(result.outcomes.empty());
}

// The second-chance volume is exported through the service registry
// (DESIGN.md §10) so operators can watch reroute pressure without parsing
// logs: the counters must track the accessors exactly.
TEST(ShardedService, ExportsRouterRerouteMetrics) {
  const Instance instance = two_shard_contention();
  const PdftspConfig config = pdftsp_config_for(instance);

  ShardedConfig sharded;
  sharded.shards = 2;
  sharded.reroute_attempts = 1;
  ShardedService service(instance, make_pdftsp_factory(config), sharded);
  serve_instance(service, instance, 1);

  auto& registry = service.registry();
  EXPECT_EQ(registry.counter("lorasched_router_reroutes_total").value(),
            service.rerouted_bids());
  EXPECT_EQ(registry.counter("lorasched_router_reroute_admits_total").value(),
            service.reroute_admits());
  EXPECT_EQ(registry.counter("lorasched_router_failovers_total").value(),
            service.failover_bids());
  EXPECT_EQ(service.rerouted_bids(), 1u);  // this scenario forces exactly one
  // Two bids routed, one re-offered.
  EXPECT_DOUBLE_EQ(registry.gauge("lorasched_router_reroute_ratio").value(),
                   0.5);

  // The Prometheus exposition carries all four series.
  std::ostringstream text;
  registry.write_prometheus(text);
  const std::string exposition = text.str();
  for (const char* name :
       {"lorasched_router_reroutes_total", "lorasched_router_reroute_admits_total",
        "lorasched_router_failovers_total", "lorasched_router_reroute_ratio"}) {
    EXPECT_NE(exposition.find(name), std::string::npos) << name;
  }
  (void)service.finish();
}

// Offline replay of a stream longer than the queue under block
// backpressure (the lorasched_shard_serve --slot-ms 0 path).
TEST(ShardedService, PumpIngestsBeyondQueueCapacityWithoutDeadlock) {
  const Instance instance = make_instance(testing::small_scenario());
  const PdftspConfig config = pdftsp_config_for(instance);

  ShardedConfig monolike;
  monolike.shards = 1;
  ShardedService reference(instance, make_pdftsp_factory(config), monolike);
  serve_instance(reference, instance, 1);
  const SimResult expected = reference.finish();

  ShardedConfig sharded;
  sharded.shards = 1;
  sharded.queue_capacity = 2;  // far below the bid count
  ShardedService service(instance, make_pdftsp_factory(config), sharded);
  ASSERT_GT(instance.tasks.size(), sharded.queue_capacity);

  std::thread feeder([&] {
    for (const Task& task : instance.tasks) {
      ASSERT_EQ(service.submit(task), service::SubmitResult::kAccepted);
    }
    service.close();
  });
  while (!service.queue().closed() || service.queue().depth() != 0) {
    service.queue().wait_available();
    service.pump();
  }
  feeder.join();
  while (!service.done()) service.step();
  const SimResult actual = service.finish();

  expect_same_outcomes(expected.outcomes, actual.outcomes);
  expect_same_metrics(expected.metrics, actual.metrics);
}

TEST(ShardedService, CheckpointRestoreResumesByteIdentically) {
  const Instance instance = make_instance(testing::small_scenario(7));
  const PdftspConfig config = pdftsp_config_for(instance);

  ShardedConfig sharded;
  sharded.shards = 3;
  sharded.reroute_attempts = 1;
  sharded.router_seed = 5;
  // Wall-clock decision timings are the one nondeterministic field in the
  // snapshot; disable them so "byte-identical" is meaningful.
  sharded.time_decisions = false;

  // Uninterrupted reference life.
  ShardedService reference(instance, make_pdftsp_factory(config), sharded);
  serve_instance(reference, instance, 1);
  std::ostringstream reference_final;
  io::write_sharded_checkpoint(reference_final, reference.checkpoint());
  const SimResult expected = reference.finish();

  // First life: ingest everything, serve half the horizon, checkpoint
  // through the io round-trip, then "crash".
  std::stringstream persisted;
  {
    ShardedService service(instance, make_pdftsp_factory(config), sharded);
    for (const Task& task : instance.tasks) {
      ASSERT_EQ(service.submit(task), service::SubmitResult::kAccepted);
    }
    service.close();
    for (Slot t = 0; t < instance.horizon / 2; ++t) service.step();
    io::write_sharded_checkpoint(persisted, service.checkpoint());
  }

  // Second life: a fresh service restored from the stream.
  ShardedService revived(instance, make_pdftsp_factory(config), sharded);
  const ShardedCheckpoint snapshot = io::read_sharded_checkpoint(persisted);
  revived.restore(snapshot);
  revived.close();
  EXPECT_EQ(revived.current_slot(), instance.horizon / 2);
  while (!revived.done()) revived.step();

  // The resumed life's terminal snapshot is byte-identical to the
  // uninterrupted one — same decisions, same duals, same ledgers.
  std::ostringstream revived_final;
  io::write_sharded_checkpoint(revived_final, revived.checkpoint());
  EXPECT_EQ(revived_final.str(), reference_final.str());

  const SimResult actual = revived.finish();
  expect_same_outcomes(expected.outcomes, actual.outcomes);
  expect_same_metrics(expected.metrics, actual.metrics);
}

TEST(ShardedService, RestoreRejectsMismatchedShardingConfig) {
  const Instance instance = make_instance(testing::small_scenario());
  const PdftspConfig config = pdftsp_config_for(instance);

  ShardedConfig sharded;
  sharded.shards = 2;
  ShardedService source(instance, make_pdftsp_factory(config), sharded);
  const ShardedCheckpoint snapshot = source.checkpoint();

  ShardedConfig other = sharded;
  other.shards = 3;
  ShardedService wrong_shards(instance, make_pdftsp_factory(config), other);
  EXPECT_THROW(wrong_shards.restore(snapshot), std::invalid_argument);

  other = sharded;
  other.router_seed = 1234;
  ShardedService wrong_seed(instance, make_pdftsp_factory(config), other);
  EXPECT_THROW(wrong_seed.restore(snapshot), std::invalid_argument);

  ShardedService stale(instance, make_pdftsp_factory(config), sharded);
  stale.step();
  EXPECT_THROW(stale.restore(snapshot), std::logic_error);
}

// --- CapacityLedger snapshot vs. concurrent reserves ------------------------

// The sharded service checkpoints each shard's ledger while other shards
// keep booking into their own; within one ledger the service serializes
// snapshot/restore against reserves with the runner handshake. This pins
// the contract that discipline relies on: under external serialization,
// restore(snapshot()) loses no concurrent booking and the pair is
// TSan-clean (the CI thread-sanitizer job includes -R CapacityLedger).
TEST(CapacityLedgerConcurrency, SnapshotRestoreConcurrentWithReserves) {
  const Cluster cluster = testing::mini_cluster(4);
  constexpr Slot kHorizon = 32;
  CapacityLedger ledger(cluster, kHorizon);

  std::mutex mutex;
  std::atomic<bool> stop{false};
  double reserved = 0.0;  // guarded by mutex

  std::thread booker([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::lock_guard<std::mutex> lock(mutex);
      const NodeId k = static_cast<NodeId>(i % cluster.node_count());
      const Slot t = static_cast<Slot>((i / cluster.node_count()) % kHorizon);
      if (ledger.fits(k, t, 1.0, 0.01)) {
        ledger.reserve(k, t, 1.0, 0.01);
        reserved += 1.0;
      }
      ++i;
    }
  });
  std::thread checkpointer([&] {
    for (int round = 0; round < 2000; ++round) {
      const std::lock_guard<std::mutex> lock(mutex);
      const CapacityLedger::Snapshot snapshot = ledger.snapshot();
      ledger.restore(snapshot);  // idempotent: must drop no booking
    }
    stop.store(true, std::memory_order_relaxed);
  });
  checkpointer.join();
  booker.join();

  double used = 0.0;
  for (NodeId k = 0; k < cluster.node_count(); ++k) {
    for (Slot t = 0; t < kHorizon; ++t) used += ledger.used_compute(k, t);
  }
  EXPECT_DOUBLE_EQ(used, reserved);
  EXPECT_GT(reserved, 0.0);
}

}  // namespace
}  // namespace lorasched::shard
