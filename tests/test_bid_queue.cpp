#include "lorasched/service/bid_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "lorasched/workload/task.h"

namespace lorasched::service {
namespace {

Task bid(TaskId id) {
  Task t;
  t.id = id;
  t.arrival = 0;
  return t;
}

TEST(BidQueue, CapacityMustBePositive) {
  EXPECT_THROW(BidQueue(0, BackpressureMode::kBlock), std::invalid_argument);
}

TEST(BidQueue, DrainsInSubmissionOrder) {
  BidQueue queue(8, BackpressureMode::kBlock);
  for (TaskId id = 0; id < 5; ++id) {
    EXPECT_EQ(queue.submit(bid(id)), SubmitResult::kAccepted);
  }
  EXPECT_EQ(queue.depth(), 5u);
  const auto drained = queue.drain();
  ASSERT_EQ(drained.size(), 5u);
  for (TaskId id = 0; id < 5; ++id) EXPECT_EQ(drained[id].id, id);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(BidQueue, PeekDoesNotConsume) {
  BidQueue queue(4, BackpressureMode::kBlock);
  (void)queue.submit(bid(7));
  EXPECT_EQ(queue.peek().size(), 1u);
  EXPECT_EQ(queue.depth(), 1u);
  EXPECT_EQ(queue.drain().size(), 1u);
}

TEST(BidQueue, WaitAvailableWakesOnSubmitAndOnClose) {
  BidQueue queue(4, BackpressureMode::kBlock);
  std::thread producer([&] { (void)queue.submit(bid(1)); });
  queue.wait_available();  // blocks until the bid lands (or is already in)
  EXPECT_EQ(queue.drain().size(), 1u);
  producer.join();

  std::thread closer([&] { queue.close(); });
  queue.wait_available();  // an empty queue unblocks on close
  EXPECT_TRUE(queue.closed());
  closer.join();
}

TEST(BidQueue, RejectModeShedsWhenFull) {
  BidQueue queue(3, BackpressureMode::kReject);
  for (TaskId id = 0; id < 3; ++id) {
    EXPECT_EQ(queue.submit(bid(id)), SubmitResult::kAccepted);
  }
  EXPECT_EQ(queue.submit(bid(3)), SubmitResult::kRejectedFull);
  EXPECT_EQ(queue.rejected_full_total(), 1u);
  (void)queue.drain();
  EXPECT_EQ(queue.submit(bid(4)), SubmitResult::kAccepted);
  EXPECT_EQ(queue.accepted_total(), 4u);
}

TEST(BidQueue, SubmitAfterCloseIsRejected) {
  BidQueue queue(4, BackpressureMode::kBlock);
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.submit(bid(0)), SubmitResult::kRejectedClosed);
}

TEST(BidQueue, BlockModeBlocksUntilDrained) {
  BidQueue queue(1, BackpressureMode::kBlock);
  ASSERT_EQ(queue.submit(bid(0)), SubmitResult::kAccepted);
  std::atomic<bool> second_accepted{false};
  std::thread producer([&] {
    const auto result = queue.submit(bid(1));
    EXPECT_EQ(result, SubmitResult::kAccepted);
    second_accepted.store(true);
  });
  // Keep draining until the parked producer gets through.
  while (!second_accepted.load()) {
    (void)queue.drain();
    std::this_thread::yield();
  }
  producer.join();
  EXPECT_TRUE(second_accepted.load());
  // Both bids went through exactly once.
  EXPECT_EQ(queue.accepted_total(), 2u);
}

TEST(BidQueue, CloseWakesBlockedProducers) {
  BidQueue queue(1, BackpressureMode::kBlock);
  ASSERT_EQ(queue.submit(bid(0)), SubmitResult::kAccepted);
  std::atomic<int> rejected{0};
  std::thread producer([&] {
    if (queue.submit(bid(1)) == SubmitResult::kRejectedClosed) ++rejected;
  });
  // Give the producer a moment to park, then close without draining.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  producer.join();
  EXPECT_EQ(rejected.load(), 1);
  EXPECT_EQ(queue.accepted_total(), 1u);
}

// close() must wake *every* producer parked on a full queue at once — a
// notify_one here strands all but one forever — and the bids that were
// already queued must stay drainable after the close.
TEST(BidQueue, CloseWakesEveryBlockedProducerAndKeepsQueuedBids) {
  constexpr int kProducers = 8;
  BidQueue queue(2, BackpressureMode::kBlock);
  ASSERT_EQ(queue.submit(bid(100)), SubmitResult::kAccepted);
  ASSERT_EQ(queue.submit(bid(101)), SubmitResult::kAccepted);

  std::atomic<int> rejected_closed{0};
  std::atomic<int> other_results{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const auto result = queue.submit(bid(static_cast<TaskId>(p)));
      if (result == SubmitResult::kRejectedClosed) {
        ++rejected_closed;
      } else {
        ++other_results;
      }
    });
  }
  // Give every producer a moment to park on the full queue, then close
  // without draining. No producer may stay blocked past the close.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  for (auto& t : producers) t.join();

  EXPECT_EQ(rejected_closed.load(), kProducers);
  EXPECT_EQ(other_results.load(), 0);
  EXPECT_EQ(queue.accepted_total(), 2u);

  // The close sheds waiters, not work: the queued bids still drain.
  const auto drained = queue.drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].id, 100);
  EXPECT_EQ(drained[1].id, 101);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(BidQueue, MultiProducerStressLosesNothing) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 2000;
  BidQueue queue(64, BackpressureMode::kBlock);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const auto result =
            queue.submit(bid(static_cast<TaskId>(p * kPerProducer + i)));
        ASSERT_EQ(result, SubmitResult::kAccepted);
      }
    });
  }

  std::set<TaskId> seen;
  std::size_t duplicates = 0;
  std::size_t received = 0;
  while (received < kProducers * kPerProducer) {
    for (const Task& t : queue.drain()) {
      ++received;
      if (!seen.insert(t.id).second) ++duplicates;
    }
  }
  for (auto& t : producers) t.join();

  EXPECT_EQ(received, static_cast<std::size_t>(kProducers * kPerProducer));
  EXPECT_EQ(duplicates, 0u);
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  EXPECT_EQ(queue.accepted_total(),
            static_cast<std::uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(queue.depth(), 0u);
}

}  // namespace
}  // namespace lorasched::service
