// Property-based suites over randomized scenarios (TEST_P over seeds):
//  * individual rationality (Thm. 4): payment <= bid for every winner;
//  * truthfulness (Thm. 3): bidding the true valuation maximizes utility;
//  * capacity safety: no (node, slot) is ever over-booked (Lemma 2 + line 8);
//  * schedule validity: every winner's plan respects (4a)-(4e).
#include <gtest/gtest.h>

#include "lorasched/core/pdftsp.h"
#include "lorasched/experiments/scenario.h"
#include "lorasched/sim/engine.h"
#include "test_helpers.h"

namespace lorasched {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Instance instance_ = make_instance([] {
    ScenarioConfig config = testing::small_scenario(GetParam());
    config.arrival_rate = 3.0;
    return config;
  }());
};

TEST_P(SeedSweep, IndividualRationalityHoldsForEveryWinner) {
  Pdftsp policy(pdftsp_config_for(instance_), instance_.cluster,
                instance_.energy, instance_.horizon);
  const SimResult result = run_simulation(instance_, policy);
  int winners = 0;
  for (const TaskOutcome& o : result.outcomes) {
    if (!o.admitted) continue;
    ++winners;
    // Utility v_i - p_i must be non-negative; with F > 0 it is strictly
    // positive up to rounding.
    EXPECT_GE(o.true_value - o.payment, -1e-9) << "task " << o.task;
  }
  EXPECT_GT(winners, 0) << "scenario admitted nothing; test is vacuous";
}

TEST_P(SeedSweep, CapacityNeverExceeded) {
  // run_simulation's ledger throws on over-booking and cross-checks booked
  // totals; surviving the run *is* the property.
  Pdftsp policy(pdftsp_config_for(instance_), instance_.cluster,
                instance_.energy, instance_.horizon);
  EXPECT_NO_THROW((void)run_simulation(instance_, policy));
}

TEST_P(SeedSweep, WinnersFinishBeforeDeadline) {
  Pdftsp policy(pdftsp_config_for(instance_), instance_.cluster,
                instance_.energy, instance_.horizon);
  const SimResult result = run_simulation(instance_, policy);
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const TaskOutcome& o = result.outcomes[i];
    if (!o.admitted) continue;
    const Task& task = instance_.tasks[static_cast<std::size_t>(o.task)];
    EXPECT_LE(o.completion, task.deadline) << "task " << o.task;
    EXPECT_GE(o.completion, task.arrival);
  }
}

TEST_P(SeedSweep, WelfareDecomposesIntoUtilities) {
  Pdftsp policy(pdftsp_config_for(instance_), instance_.cluster,
                instance_.energy, instance_.horizon);
  const SimResult result = run_simulation(instance_, policy);
  // U = U_r + U_c exactly (payments cancel) when bids are truthful.
  EXPECT_NEAR(result.metrics.social_welfare,
              result.metrics.provider_utility + result.metrics.user_utility,
              1e-6);
}

TEST_P(SeedSweep, TruthfulnessOnSampledBids) {
  // For a handful of tasks, replay the *entire* auction with only that
  // task's bid changed and compare utilities (Thm. 3's experiment).
  ScenarioConfig config = testing::small_scenario(GetParam());
  config.arrival_rate = 3.0;
  const Instance truthful = make_instance(config);
  Pdftsp base_policy(pdftsp_config_for(truthful), truthful.cluster,
                     truthful.energy, truthful.horizon);
  const SimResult base = run_simulation(truthful, base_policy);

  const std::size_t probe_count = std::min<std::size_t>(4, truthful.tasks.size());
  for (std::size_t probe = 0; probe < probe_count; ++probe) {
    const TaskId victim = truthful.tasks[probe * truthful.tasks.size() /
                                         (probe_count + 1)].id;
    const TaskOutcome& honest = base.outcomes[static_cast<std::size_t>(victim)];
    const double honest_utility =
        honest.admitted ? honest.true_value - honest.payment : 0.0;
    for (double factor : {0.5, 0.8, 1.3, 2.0}) {
      Instance misreport = truthful;
      misreport.tasks[static_cast<std::size_t>(victim)].bid *= factor;
      // alpha/beta stay at the truthful values: the mechanism's parameters
      // are the provider's, not recomputed per bid.
      Pdftsp policy(pdftsp_config_for(truthful), misreport.cluster,
                    misreport.energy, misreport.horizon);
      const SimResult lied = run_simulation(misreport, policy);
      const TaskOutcome& outcome =
          lied.outcomes[static_cast<std::size_t>(victim)];
      const double lied_utility =
          outcome.admitted ? outcome.true_value - outcome.payment : 0.0;
      EXPECT_LE(lied_utility, honest_utility + 1e-7)
          << "task " << victim << " gained by bidding x" << factor;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1ull, 7ull, 21ull, 42ull, 1234ull));

class DeadlineSweep : public ::testing::TestWithParam<DeadlineKind> {};

TEST_P(DeadlineSweep, EveryDeadlineKindProducesAWorkingAuction) {
  // Welfare ordering across deadline kinds is only an *averaged* trend
  // (Fig. 9, reproduced by bench/fig09_deadlines); per-seed it can flip for
  // an online algorithm. The hard per-instance property is that each kind
  // yields a valid, non-degenerate run.
  ScenarioConfig config = testing::small_scenario(5);
  config.arrival_rate = 4.0;
  config.deadline = GetParam();
  const Instance instance = make_instance(config);
  Pdftsp policy(pdftsp_config_for(instance), instance.cluster,
                instance.energy, instance.horizon);
  const SimResult result = run_simulation(instance, policy);
  EXPECT_GT(result.metrics.admitted, 0);
  EXPECT_GT(result.metrics.social_welfare, 0.0);
}

TEST(DeadlineKinds, GeneratedDeadlinesAreOrderedPerTask) {
  // Generator-level monotonicity: the same task draw gets a (weakly) later
  // deadline under slacker kinds.
  ScenarioConfig tight_config = testing::small_scenario(5);
  tight_config.deadline = DeadlineKind::kTight;
  ScenarioConfig slack_config = testing::small_scenario(5);
  slack_config.deadline = DeadlineKind::kSlack;
  const Instance tight = make_instance(tight_config);
  const Instance slack = make_instance(slack_config);
  ASSERT_EQ(tight.tasks.size(), slack.tasks.size());
  int slacker = 0;
  for (std::size_t i = 0; i < tight.tasks.size(); ++i) {
    if (slack.tasks[i].deadline >= tight.tasks[i].deadline) ++slacker;
  }
  // Jitter aside, virtually all tasks must get more room.
  EXPECT_GE(slacker * 10, static_cast<int>(tight.tasks.size()) * 9);
}

INSTANTIATE_TEST_SUITE_P(Kinds, DeadlineSweep,
                         ::testing::Values(DeadlineKind::kTight,
                                           DeadlineKind::kMedium,
                                           DeadlineKind::kSlack),
                         [](const auto& info) { return to_string(info.param); });

}  // namespace
}  // namespace lorasched
