// Tests for the online parameter estimator and the self-calibrating
// AdaptivePdftsp policy.
#include "lorasched/core/online_params.h"

#include <gtest/gtest.h>

#include "lorasched/experiments/runner.h"
#include "lorasched/sim/engine.h"
#include "lorasched/workload/taskgen.h"
#include "test_helpers.h"

namespace lorasched {
namespace {

using testing::make_task;
using testing::mini_cluster;

TEST(OnlineParamEstimator, PermissiveBeforeObservations) {
  const Cluster cluster = mini_cluster();
  const OnlineParamEstimator est({}, cluster);
  EXPECT_EQ(est.observed(), 0u);
  EXPECT_LE(est.alpha(), 1e-11);
  EXPECT_LE(est.beta(), 1e-11);
  EXPECT_DOUBLE_EQ(est.welfare_unit(), 1.0);
}

TEST(OnlineParamEstimator, TracksRunningMaxima) {
  const Cluster cluster = mini_cluster();
  OnlineParamEstimator::Config config;
  config.price_scale = 1.0;  // raw maxima for easy checking
  OnlineParamEstimator est(config, cluster);
  // 1 slot at rate 500, share 0.5 -> compute volume 0.5; mem 2/16 = 0.125.
  est.observe(make_task(0, 0, 10, 400.0, 2.0, 0.5, 10.0));
  EXPECT_NEAR(est.alpha(), 10.0 / 0.5, 1e-9);
  EXPECT_NEAR(est.beta(), 10.0 / 0.125, 1e-9);
  // A weaker bid must not lower the maxima.
  est.observe(make_task(1, 0, 10, 400.0, 2.0, 0.5, 1.0));
  EXPECT_NEAR(est.alpha(), 20.0, 1e-9);
  // A denser bid raises them.
  est.observe(make_task(2, 0, 10, 400.0, 2.0, 0.5, 30.0));
  EXPECT_NEAR(est.alpha(), 60.0, 1e-9);
}

TEST(OnlineParamEstimator, ConvergesToOfflineBounds) {
  // After observing the whole population the running maxima equal the
  // offline Lemma-2 bounds (same price scale).
  const Instance instance = make_instance(testing::small_scenario(17));
  OnlineParamEstimator::Config config;
  config.price_scale = 1.0;
  OnlineParamEstimator est(config, instance.cluster);
  for (const Task& task : instance.tasks) est.observe(task);
  EXPECT_NEAR(est.alpha(), alpha_bound(instance.tasks, instance.cluster),
              1e-9);
  EXPECT_NEAR(est.beta(), beta_bound(instance.tasks, instance.cluster), 1e-9);
  EXPECT_GT(est.welfare_unit(), 0.0);
}

TEST(OnlineParamEstimator, IgnoresDegenerateTasks) {
  const Cluster cluster = mini_cluster();
  OnlineParamEstimator est({}, cluster);
  Task zero_work = make_task(0, 0, 10, 0.0);
  est.observe(zero_work);
  Task zero_bid = make_task(1, 0, 10, 400.0, 2.0, 0.5, 0.0);
  est.observe(zero_bid);
  EXPECT_LE(est.alpha(), 1e-11);
  EXPECT_EQ(est.observed(), 2u);
}

TEST(OnlineParamEstimator, RejectsBadConfig) {
  const Cluster cluster = mini_cluster();
  OnlineParamEstimator::Config bad;
  bad.price_scale = 0.0;
  EXPECT_THROW(OnlineParamEstimator(bad, cluster), std::invalid_argument);
  OnlineParamEstimator::Config quantile;
  quantile.kappa_quantile = 1.5;
  EXPECT_THROW(OnlineParamEstimator(quantile, cluster), std::invalid_argument);
  OnlineParamEstimator::Config reservoir;
  reservoir.reservoir = 0;
  EXPECT_THROW(OnlineParamEstimator(reservoir, cluster),
               std::invalid_argument);
}

TEST(AdaptivePdftsp, RunsCleanlyAndAdmitsWork) {
  const Instance instance = make_instance(testing::small_scenario(19));
  AdaptivePdftsp policy({}, instance.cluster, instance.energy,
                        instance.horizon);
  const SimResult result = run_simulation(instance, policy);
  EXPECT_GT(result.metrics.admitted, 0);
  EXPECT_GT(result.metrics.social_welfare, 0.0);
  EXPECT_EQ(policy.estimator().observed(), instance.tasks.size());
}

TEST(AdaptivePdftsp, WelfareCloseToOfflineCalibratedPdftsp) {
  // Self-calibration should land in the same ballpark as the variant with
  // full offline knowledge of the bid population.
  ScenarioConfig config = testing::small_scenario(23);
  config.arrival_rate = 4.0;
  const Instance instance = make_instance(config);
  AdaptivePdftsp adaptive({}, instance.cluster, instance.energy,
                          instance.horizon);
  Pdftsp offline(pdftsp_config_for(instance), instance.cluster,
                 instance.energy, instance.horizon);
  const Metrics adaptive_m = run_simulation(instance, adaptive).metrics;
  const Metrics offline_m = run_simulation(instance, offline).metrics;
  EXPECT_GT(adaptive_m.social_welfare, 0.5 * offline_m.social_welfare);
}

TEST(AdaptivePdftsp, IndividualRationalityStillHolds) {
  const Instance instance = make_instance(testing::small_scenario(29));
  AdaptivePdftsp policy({}, instance.cluster, instance.energy,
                        instance.horizon);
  const SimResult result = run_simulation(instance, policy);
  for (const TaskOutcome& o : result.outcomes) {
    if (o.admitted) {
      EXPECT_GE(o.true_value - o.payment, -1e-9);
    }
  }
}

TEST(Pdftsp, SetPricingValidatesAndApplies) {
  const Cluster cluster = mini_cluster();
  const EnergyModel energy = testing::flat_energy();
  Pdftsp policy(PdftspConfig{}, cluster, energy, 10);
  policy.set_pricing(2.0, 3.0, 4.0);
  EXPECT_DOUBLE_EQ(policy.config().alpha, 2.0);
  EXPECT_DOUBLE_EQ(policy.config().beta, 3.0);
  EXPECT_DOUBLE_EQ(policy.config().welfare_unit, 4.0);
  EXPECT_THROW(policy.set_pricing(0.0, 1.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace lorasched
