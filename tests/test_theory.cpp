// Tests for the Theorem-5 competitive-bound evaluation.
#include "lorasched/core/theory.h"

#include <gtest/gtest.h>

#include "lorasched/core/pdftsp.h"
#include "lorasched/sim/engine.h"
#include "lorasched/solver/colgen.h"
#include "test_helpers.h"

namespace lorasched {
namespace {

using testing::make_task;
using testing::mini_cluster;

Instance instance_with(std::vector<Task> tasks) {
  return Instance(mini_cluster(), testing::flat_energy(),
                  Marketplace(Marketplace::Config{}, 1), 20, std::move(tasks));
}

TEST(Theory, ThrowsOnDegeneratePopulation) {
  EXPECT_THROW((void)theoretical_bound(instance_with({})),
               std::invalid_argument);
  EXPECT_THROW((void)theoretical_bound(
                   instance_with({make_task(0, 0, 5, 0.0)})),
               std::invalid_argument);
}

TEST(Theory, HomogeneousPopulationGivesRhoTwo) {
  // Identical tasks: every spread ratio is 1, so ρ = 1 + max{1, 1} = 2.
  std::vector<Task> tasks{make_task(0, 0, 10, 500.0, 2.0, 0.5, 5.0),
                          make_task(1, 2, 12, 500.0, 2.0, 0.5, 5.0)};
  const CompetitiveBound bound = theoretical_bound(instance_with(tasks));
  EXPECT_NEAR(bound.rho, 2.0, 1e-9);
  EXPECT_GT(bound.gamma, bound.rho);  // the (1 + max{α,β}/κ) factor
}

TEST(Theory, SpreadInflatesRho) {
  std::vector<Task> narrow{make_task(0, 0, 10, 500.0, 2.0, 0.5, 5.0),
                           make_task(1, 2, 12, 500.0, 2.0, 0.5, 5.0)};
  std::vector<Task> wide{make_task(0, 0, 10, 500.0, 2.0, 0.5, 5.0),
                         make_task(1, 2, 12, 500.0, 8.0, 0.5, 20.0)};
  EXPECT_GT(theoretical_bound(instance_with(wide)).rho,
            theoretical_bound(instance_with(narrow)).rho);
}

TEST(Theory, GammaAtLeastOne) {
  const Instance instance = make_instance(testing::small_scenario(57));
  const CompetitiveBound bound = theoretical_bound(instance);
  EXPECT_GE(bound.gamma, 1.0);
  EXPECT_GE(bound.rho, 1.0);
  EXPECT_GT(bound.alpha, 0.0);
  EXPECT_GT(bound.beta, 0.0);
}

TEST(Theory, IngredientsAreConsistentExtremes) {
  const Instance instance = make_instance(testing::small_scenario(57));
  const CompetitiveBound bound = theoretical_bound(instance);
  EXPECT_GE(bound.unit_welfare_max, bound.unit_welfare_min);
  EXPECT_GE(bound.rate_max, bound.rate_min);
  EXPECT_GE(bound.mem_max, bound.mem_min);
  EXPECT_GT(bound.unit_welfare_min, 0.0);
}

TEST(Theory, GuaranteeDominatesEmpiricalRatio) {
  // Theorem 5: the worst-case γ must upper-bound the measured OPT/online
  // ratio on any instance (with a healthy margin in practice).
  ScenarioConfig config = testing::small_scenario(59);
  config.nodes = 3;
  config.horizon = 24;
  config.arrival_rate = 1.0;
  const Instance instance = make_instance(config);
  Pdftsp policy(pdftsp_config_for(instance), instance.cluster, instance.energy,
                instance.horizon);
  const SimResult online = run_simulation(instance, policy);
  if (online.metrics.social_welfare <= 0.0) GTEST_SKIP();
  const OfflineBound offline = solve_offline(instance);
  const double empirical =
      offline.lp_bound / online.metrics.social_welfare;
  EXPECT_LE(empirical, theoretical_bound(instance).gamma + 1e-6);
}

}  // namespace
}  // namespace lorasched
