#!/usr/bin/env python3
"""Determinism lint for the decision-path directories (DESIGN.md §13).

The scheduler's contract is bit-identical replay: the same bid stream must
produce the same decisions, payments, and golden fingerprints on every run
and every host. This lint rejects the constructs that historically break
that contract, in the directories whose code feeds decisions:

    src/lorasched/core/     pricing, duals, schedule DP
    src/lorasched/shard/    routing, shard rounds, price board
    src/lorasched/net/      wire codecs, remote rounds
    src/lorasched/loadgen/  firehose streams (seed-reproducible offered load)

Rules (regex/hybrid — line-based with comment/string stripping):

  nondeterministic-rand   rand()/srand()/std::random_device/random_shuffle.
                          Decision code draws randomness only from the
                          seeded SplitMix/Philox streams in util/rng.
  wall-clock              time(), clock(), gettimeofday(), localtime(),
                          std::chrono::system_clock. Wall-clock time must
                          never reach a decision; steady_clock is allowed
                          because it only feeds *measurements* (latency
                          metrics), never decisions.
  float-equality          ==/!= where an operand is a floating literal or a
                          float-suggesting name (cost, price, share, ...).
                          Bit-exact compares that are PART of the
                          determinism contract (drift detectors, tie-break
                          orderings) belong in the allowlist with a
                          justification.
  unordered-container     std::unordered_map/set declarations. Iteration
                          order is libstdc++-version- and seed-dependent;
                          decision paths iterate ordered containers only.

Diagnostics print as file:line: rule: message, and any finding exits
non-zero. False positives and contract-exempt lines go in
tools/lint/determinism_allow.txt (format documented there).

    determinism_lint.py [--root DIR] [paths...]   lint tree or given files
    determinism_lint.py --self-test               prove the rules fire
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

DECISION_DIRS = (
    os.path.join("src", "lorasched", "core"),
    os.path.join("src", "lorasched", "shard"),
    os.path.join("src", "lorasched", "net"),
    os.path.join("src", "lorasched", "loadgen"),
)
ALLOWLIST = os.path.join("tools", "lint", "determinism_allow.txt")

FLOAT_LITERAL = r"(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?f?|\d+[eE][+-]?\d+f?"
# Identifiers that (in this codebase) name double-valued quantities. The
# list is deliberately curated, not exhaustive: a miss is a gap, a false
# positive is an allowlist entry — both visible, neither silent.
FLOATY_NAME = (
    r"[A-Za-z0-9_.\->\[\]()]*"
    r"(?:cost|price|payment|welfare|utilit|compute|share|seconds|booked|"
    r"lambda|phi|alpha|beta|free_|mean_|rate|energy|budget|density)"
    r"[A-Za-z0-9_.\->\[\]()]*"
)
FLOATY_OPERAND = re.compile(
    r"^(?:{lit}|{name})$".format(lit=FLOAT_LITERAL, name=FLOATY_NAME)
)
# Integer-suggesting names rescue operands the floaty regex over-matches
# (".size()", "free_count", version counters).
INTY_OPERAND = re.compile(r"(?:size|count|length|version|index|\bid\b|_id\b)",
                          re.IGNORECASE)

RULES = [
    (
        "nondeterministic-rand",
        re.compile(
            r"\b(?:rand|srand)\s*\(|std::random_device|\brandom_shuffle\b"
        ),
        "unseeded randomness in a decision path (use util/rng streams)",
    ),
    (
        "wall-clock",
        re.compile(
            r"std::chrono::system_clock|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
            r"|\bgettimeofday\b|\bclock\s*\(\s*\)|\blocaltime\b|\bgmtime\b"
        ),
        "wall-clock time in a decision path (decisions depend on slots, "
        "never on the clock)",
    ),
    (
        "unordered-container",
        re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b"),
        "unordered container in a decision path (iteration order is not "
        "reproducible; use std::map/std::set/vector)",
    ),
]

COMPARE = re.compile(r"([^=!<>&|^\s][^=!<>&|^]*?)\s*(==|!=)\s*([^=<>!&|^]+)")
# The comparison's immediate operands: the token touching each side of the
# operator (expressions like `return cost != 0.0;` carry leading keywords
# and trailing punctuation the floaty test must not see).
LHS_TOKEN = re.compile(r"[\w.\[\]()>-]+$")
RHS_TOKEN = re.compile(r"^[\w.\[\]()>-]+")


def strip_comments_and_strings(line: str, in_block: bool) -> tuple[str, bool]:
    """Blanks out string/char literals, // and /* */ comments (tracking
    block-comment state across lines) so rules never fire inside them."""
    out = []
    i, n = 0, len(line)
    while i < n:
        if in_block:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block = False
            continue
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            in_block = True
            i += 2
            continue
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out), in_block


def operand_is_floaty(text: str) -> bool:
    text = text.strip().strip("()")
    if not text or INTY_OPERAND.search(text):
        return False
    return bool(FLOATY_OPERAND.match(text))


def float_equality_findings(code: str) -> list[str]:
    findings = []
    for m in COMPARE.finditer(code):
        op = m.group(2)
        lhs_match = LHS_TOKEN.search(m.group(1).strip())
        rhs_match = RHS_TOKEN.search(m.group(3).strip())
        lhs = lhs_match.group(0) if lhs_match else ""
        rhs = rhs_match.group(0) if rhs_match else ""
        if operand_is_floaty(lhs) or operand_is_floaty(rhs):
            findings.append(
                "floating-point {} comparison (decision paths compare "
                "through explicit tolerances or documented bit-exact "
                "contracts — allowlist the latter)".format(op)
            )
    return findings


class Allowlist:
    """Lines of the form  path|rule|substring  (see determinism_allow.txt).

    An entry suppresses a finding when the path suffix matches, the rule
    matches, and the offending line contains the substring — line numbers
    are deliberately not used, so entries survive unrelated edits."""

    def __init__(self, path: str):
        self.entries: list[tuple[str, str, str]] = []
        self.used = [False] * 0
        if not os.path.exists(path):
            return
        with open(path, encoding="utf-8") as fh:
            for raw in fh:
                stripped = raw.strip()
                if not stripped or stripped.startswith("#"):
                    continue
                parts = stripped.split("|", 2)
                if len(parts) != 3:
                    print(
                        "{}: malformed allowlist entry: {}".format(path, raw),
                        file=sys.stderr,
                    )
                    sys.exit(2)
                self.entries.append((parts[0], parts[1], parts[2]))
        self.used = [False] * len(self.entries)

    def suppresses(self, path: str, rule: str, line: str) -> bool:
        norm = path.replace(os.sep, "/")
        for idx, (epath, erule, esub) in enumerate(self.entries):
            if norm.endswith(epath) and rule == erule and esub in line:
                self.used[idx] = True
                return True
        return False


def lint_file(path: str, allow: Allowlist) -> list[str]:
    diagnostics = []
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            lines = fh.readlines()
    except OSError as err:
        return ["{}: unreadable: {}".format(path, err)]
    in_block = False
    for lineno, raw in enumerate(lines, start=1):
        code, in_block = strip_comments_and_strings(raw.rstrip("\n"), in_block)
        if not code.strip():
            continue
        hits = []
        for rule, pattern, message in RULES:
            if pattern.search(code):
                hits.append((rule, message))
        for message in float_equality_findings(code):
            hits.append(("float-equality", message))
        for rule, message in hits:
            if allow.suppresses(path, rule, raw):
                continue
            diagnostics.append(
                "{}:{}: {}: {}".format(path, lineno, rule, message)
            )
    return diagnostics


def collect_files(root: str, paths: list[str]) -> list[str]:
    if paths:
        return paths
    files = []
    for sub in DECISION_DIRS:
        base = os.path.join(root, sub)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith((".h", ".cpp", ".cc", ".hpp")):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


BAD_EXAMPLE = """\
// Seeded bad example: every construct below must be caught.
#include <ctime>
#include <unordered_map>
double jitter() {
  return rand() / 7.0;                       // nondeterministic-rand
}
long stamp() {
  return time(nullptr);                       // wall-clock
}
bool same_price(double price_a, double price_b) {
  return price_a == price_b;                  // float-equality (literal-free)
}
bool warm(double cost) {
  return cost != 0.0;                         // float-equality (literal)
}
std::unordered_map<int, double> prices;       // unordered-container
// rand() inside a comment must NOT fire.
const char* s = "rand() inside a string";     // nor inside a string
bool after_inline(double price_c) {
  return f(/*exact=*/true) && price_c == 1.0; // float-equality AFTER an
}                                             // inline /*...*/ comment:
// the block-comment state must close on the same line, not swallow the
// rest of the file.
"""

SELF_TEST_EXPECT = {
    "nondeterministic-rand": 1,
    "wall-clock": 1,
    "float-equality": 3,
    "unordered-container": 1,
}


def self_test() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        bad = os.path.join(tmp, "bad_example.cpp")
        with open(bad, "w", encoding="utf-8") as fh:
            fh.write(BAD_EXAMPLE)
        diagnostics = lint_file(bad, Allowlist(os.path.join(tmp, "none")))
    counts: dict[str, int] = {}
    for diag in diagnostics:
        rule = diag.split(": ")[1]
        counts[rule] = counts.get(rule, 0) + 1
    ok = counts == SELF_TEST_EXPECT
    for diag in diagnostics:
        print(diag)
    if not ok:
        print(
            "self-test FAILED: expected {} got {}".format(
                SELF_TEST_EXPECT, counts
            ),
            file=sys.stderr,
        )
        return 1
    print("self-test passed: every rule fires on the seeded bad example")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".", help="repo root (default: .)")
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="lint a seeded bad example and verify every rule fires",
    )
    parser.add_argument("paths", nargs="*", help="explicit files to lint")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    allow = Allowlist(os.path.join(args.root, ALLOWLIST))
    diagnostics = []
    for path in collect_files(args.root, args.paths):
        diagnostics.extend(lint_file(path, allow))
    for diag in diagnostics:
        print(diag)
    stale = [
        "|".join(entry)
        for entry, used in zip(allow.entries, allow.used)
        if not used and not args.paths
    ]
    for entry in stale:
        print("stale allowlist entry (matched nothing): {}".format(entry))
    if diagnostics or stale:
        return 1
    print("determinism lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
